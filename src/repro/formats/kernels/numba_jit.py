"""Optional numba-JIT backend (``REPRO_KERNEL_BACKEND=numba``).

A straight scalar transcription of the CUDA extraction loop, compiled
with ``@njit(nogil=True)`` so streaming decode workers overlap instead
of serialising on the GIL.  The module always imports — when numba is
absent, :data:`AVAILABLE` is False and :data:`UNAVAILABLE_REASON` says
why; :func:`repro.formats.kernels.set_backend` then falls back to the
shift-table backend with a warning rather than failing.
"""

from __future__ import annotations

import numpy as np

from repro.formats.kernels import KernelBackend

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    AVAILABLE = True
    UNAVAILABLE_REASON: str | None = None
except ImportError as exc:  # numba not in the environment
    njit = None
    AVAILABLE = False
    UNAVAILABLE_REASON = str(exc)

_WORD_BITS = 32


def _words_needed(count: int, bits: int) -> int:
    return -(-count * bits // _WORD_BITS)


if AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @njit(nogil=True, cache=True)
    def _unpack_kernel(words, count, bits, out):
        # words carries one sentinel word past the stream end, so the
        # two-word window read is always in bounds.
        mask = (np.uint64(1) << np.uint64(bits)) - np.uint64(1)
        for i in range(count):
            bitpos = i * bits
            w = bitpos >> 5
            s = np.uint64(bitpos & 31)
            window = np.uint64(words[w]) | (np.uint64(words[w + 1]) << np.uint64(32))
            out[i] = np.uint32((window >> s) & mask)

    @njit(nogil=True, cache=True)
    def _pack_kernel(values, bits, acc):
        # acc is one word longer than the stream; the spill of the last
        # value lands in the sentinel and is provably zero.
        for i in range(values.size):
            bitpos = i * bits
            w = bitpos >> 5
            s = np.uint64(bitpos & 31)
            v = np.uint64(values[i]) << s
            acc[w] |= v & np.uint64(0xFFFFFFFF)
            acc[w + 1] |= v >> np.uint64(32)


class NumbaBackend(KernelBackend):
    """JIT-compiled scalar loops (compiled on first call per bitwidth)."""

    name = "numba"

    def __init__(self):
        if not AVAILABLE:
            raise ModuleNotFoundError(UNAVAILABLE_REASON)

    def unpack(self, words: np.ndarray, count: int, bits: int) -> np.ndarray:
        needed = _words_needed(count, bits)
        w = np.empty(needed + 1, dtype=np.uint32)
        w[:needed] = words[:needed]
        w[needed] = 0
        out = np.empty(count, dtype=np.uint32)
        _unpack_kernel(w, count, bits, out)
        return out

    def pack(self, values: np.ndarray, bits: int) -> np.ndarray:
        nwords = _words_needed(values.size, bits)
        acc = np.zeros(nwords + 1, dtype=np.uint64)
        _pack_kernel(values, bits, acc)
        return acc[:nwords].astype(np.uint32)
