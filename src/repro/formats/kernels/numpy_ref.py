"""The reference NumPy backend — the bit-identity oracle.

This is the phase-loop implementation that previously lived inline in
:mod:`repro.formats.bitio`, kept verbatim (minus argument validation,
which stays in ``bitio``): every other backend must produce bit-identical
streams and values.  Deliberately self-contained — the kernels package
imports nothing from the rest of :mod:`repro.formats`.
"""

from __future__ import annotations

import numpy as np

from repro.formats.kernels import KernelBackend

_WORD_BITS = 32


def _words_needed(count: int, bits: int) -> int:
    return -(-count * bits // _WORD_BITS)


class NumpyBackend(KernelBackend):
    """Per-call gcd/phase-loop pack and unpack (the oracle)."""

    name = "numpy"

    def pack(self, values: np.ndarray, bits: int) -> np.ndarray:
        # Value i starts at stream bit i*bits, i.e. bit (i*bits % 32) of
        # word i*bits // 32, and with bits <= 32 it straddles at most that
        # word and the next.  The start offsets repeat with period
        # P = 32/gcd(bits, 32) and within one phase the word index advances
        # by the constant stride S = bits/gcd(bits, 32): each phase is one
        # strided OR of ``value << scalar_shift`` into a 64-bit accumulator
        # indexed by word.  In-phase values sit exactly S words apart, so a
        # phase never writes the same word twice.  The low half of
        # ``acc[w]`` is word ``w``; the high half is its spill into word
        # ``w + 1``.
        n = values.size
        nwords = _words_needed(n, bits)
        acc = np.zeros(nwords, dtype=np.uint64)
        g = np.gcd(bits, _WORD_BITS)
        period = _WORD_BITS // g
        stride = bits // g
        for p in range(min(period, n)):
            n_p = -(-(n - p) // period)  # values in phase p
            w0 = (p * bits) >> 5
            acc[w0::stride][:n_p] |= values[p::period] << np.uint64((p * bits) & 31)
        out = acc.astype(np.uint32)  # truncation keeps the low word
        # The final word's spill is provably zero (every value fits inside
        # the nwords*32-bit stream), so shifting acc[:-1] covers all of it.
        out[1:] |= (acc[:-1] >> np.uint64(32)).astype(np.uint32)
        return out

    def unpack(self, words: np.ndarray, count: int, bits: int) -> np.ndarray:
        # Value i occupies bits [i*bits, (i+1)*bits) of the stream, so with
        # bits <= 32 it straddles at most two adjacent words.  View the
        # stream as overlapping 64-bit windows (stride 4 bytes); window w
        # holds words w and w+1, so value i is `(windows[i*bits//32] >>
        # (i*bits % 32)) & mask` — the CUDA kernel's extraction.
        needed = _words_needed(count, bits)
        w = np.empty(needed + 1, dtype=np.uint32)
        w[:needed] = words[:needed]
        w[needed] = 0  # high-word sentinel for the final value
        windows = np.ndarray(
            shape=(needed,), dtype=np.uint64, buffer=w.data, strides=(4,)
        )
        # Truncating to uint32 drops window bits >= 32; the mask (which fits
        # uint32 for every bits <= 32) then drops bits >= `bits`.
        mask = np.uint32((1 << bits) - 1)
        if count < 4096:
            # Small batch: one fancy-indexed gather beats paying the slice
            # setup once per phase.
            pos = np.arange(count, dtype=np.int64) * bits
            shift = (pos & 31).astype(np.uint64)
            return (windows[pos >> 5] >> shift).astype(np.uint32) & mask
        g = np.gcd(bits, _WORD_BITS)
        period = _WORD_BITS // g
        stride = bits // g
        out = np.empty(count, dtype=np.uint32)
        for p in range(min(period, count)):
            n_p = -(-(count - p) // period)  # values in phase p
            phase = windows[(p * bits) >> 5 :: stride][:n_p]
            out[p::period] = (phase >> np.uint64((p * bits) & 31)).astype(np.uint32)
        out &= mask
        return out
