"""FOR + miniblock bit-packing for *ragged* blocks.

GPU-RFOR compresses a variable number of runs per 512-value block, so its
physical layout is the GPU-FOR block format generalized to a variable
miniblock count: per block a reference word, ``ceil(miniblocks/4)``
bitwidth words (one byte per miniblock), then the packed miniblocks of 32
values each.  This module implements that generalized packer/unpacker,
fully vectorized across blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats import bitio
from repro.formats.gpufor import MINIBLOCK, bit_length


@dataclass
class RaggedPacked:
    """Result of :func:`pack_ragged`."""

    #: Packed words: per block [reference][bw words][miniblock words...].
    data: np.ndarray
    #: Word offset of each block (with end sentinel, ``n_blocks + 1``).
    block_starts: np.ndarray
    #: Real (unpadded) value count per block.
    counts: np.ndarray


def _pad_counts(counts: np.ndarray) -> np.ndarray:
    """Padded per-block count: round up to whole miniblocks (min one)."""
    return np.maximum(-(-counts // MINIBLOCK), 1) * MINIBLOCK


def pack_ragged(values: np.ndarray, counts: np.ndarray) -> RaggedPacked:
    """FOR + bit-pack per-block value groups of varying size.

    Args:
        values: all blocks' values concatenated (int64, any sign).
        counts: number of values in each block; ``sum(counts) == len(values)``.
            Every count must be at least 1.

    Returns:
        A :class:`RaggedPacked` with the block-structured stream.
    """
    values = np.asarray(values, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size and counts.min() < 1:
        raise ValueError("every block must contain at least one value")
    if int(counts.sum()) != values.size:
        raise ValueError("counts do not sum to len(values)")
    n_blocks = counts.size
    if n_blocks == 0:
        return RaggedPacked(
            data=np.zeros(0, dtype=np.uint32),
            block_starts=np.zeros(1, dtype=np.uint32),
            counts=counts.astype(np.uint32),
        )

    block_of_value = np.repeat(np.arange(n_blocks), counts)
    value_offsets = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(counts, out=value_offsets[1:])

    references = np.minimum.reduceat(values, value_offsets[:-1])
    if not -(2**31) <= int(references.min()) <= int(references.max()) < 2**31:
        # One 32-bit reference word per block; wider would wrap on astype.
        raise ValueError("block references do not fit in int32")
    if int((values - references[block_of_value]).max(initial=0)) >= 2**32:
        raise ValueError("per-block value range exceeds 32 bits; cannot bit-pack")

    # Build the padded flat array: each block rounded up to miniblocks,
    # padding with the block's own first value (never widens the range).
    padded_counts = _pad_counts(counts)
    padded_offsets = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(padded_counts, out=padded_offsets[1:])
    total_padded = int(padded_offsets[-1])
    padded = np.repeat(values[value_offsets[:-1]], padded_counts)
    dest = np.repeat(padded_offsets[:-1] - value_offsets[:-1], counts) + np.arange(
        values.size
    )
    padded[dest] = values
    diffs = padded - np.repeat(references, padded_counts)

    minis = diffs.reshape(-1, MINIBLOCK)
    bits = bit_length(minis.max(axis=1)).astype(np.int64)
    minis_per_block = padded_counts // MINIBLOCK
    mini_offsets = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(minis_per_block, out=mini_offsets[1:])

    bw_words_per_block = -(-minis_per_block // 4)
    block_data_words = np.add.reduceat(bits, mini_offsets[:-1])
    block_words = 1 + bw_words_per_block + block_data_words
    block_starts = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(block_words, out=block_starts[1:])
    if int(block_starts[-1]) >= 2**32:
        raise ValueError("column too large: block start offsets exceed 32 bits")

    data = np.zeros(int(block_starts[-1]), dtype=np.uint32)
    data[block_starts[:-1]] = references.astype(np.int32).view(np.uint32)

    # Bitwidth bytes, one per miniblock, padded to whole words per block.
    bw_byte_offsets = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(bw_words_per_block * 4, out=bw_byte_offsets[1:])
    bw_bytes = np.zeros(int(bw_byte_offsets[-1]), dtype=np.uint8)
    mini_block_of = np.repeat(np.arange(n_blocks), minis_per_block)
    within = np.arange(bits.size) - mini_offsets[mini_block_of]
    bw_bytes[bw_byte_offsets[mini_block_of] + within] = bits
    bw_as_words = bw_bytes.view("<u4").astype(np.uint32)
    # Scatter the bw words right after each reference word.
    bw_word_idx = np.repeat(
        block_starts[:-1] + 1, bw_words_per_block
    ) + (
        np.arange(bw_as_words.size)
        - np.repeat(bw_byte_offsets[:-1] // 4, bw_words_per_block)
    )
    data[bw_word_idx] = bw_as_words

    # Word offset of each miniblock: block payload start + prior minis' bits.
    c = np.cumsum(bits)
    prior_bits = c - bits
    block_prior = prior_bits[mini_offsets[:-1]]
    mini_word_off = (
        np.repeat(block_starts[:-1] + 1 + bw_words_per_block, minis_per_block)
        + prior_bits
        - np.repeat(block_prior, minis_per_block)
    )

    flat = minis.astype(np.uint64)
    for b in np.unique(bits):
        if b == 0:
            continue
        sel = np.flatnonzero(bits == b)
        packed = bitio.pack_bits(flat[sel].reshape(-1), int(b)).reshape(sel.size, int(b))
        dest_idx = mini_word_off[sel][:, None] + np.arange(int(b))
        data[dest_idx.reshape(-1)] = packed.reshape(-1)

    return RaggedPacked(
        data=data,
        block_starts=block_starts.astype(np.uint32),
        counts=counts.astype(np.uint32),
    )


def unpack_ragged(
    packed: RaggedPacked, first_block: int = 0, last_block: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Decode blocks ``[first_block, last_block)`` of a ragged stream.

    Returns:
        ``(values, counts)`` — the decoded values of those blocks
        concatenated, and the per-block counts (real, unpadded).
    """
    n_total = packed.counts.size
    if last_block is None:
        last_block = n_total
    if not 0 <= first_block <= last_block <= n_total:
        raise IndexError(f"block range [{first_block}, {last_block}) out of bounds")
    return unpack_ragged_blocks(packed, np.arange(first_block, last_block))


def unpack_ragged_blocks(
    packed: RaggedPacked, blocks: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Decode an arbitrary batch of blocks of a ragged stream.

    The batched decoder core behind :func:`unpack_ragged` and
    GPU-RFOR's ``decode_tiles``: every selected block's miniblocks are
    unpacked in a single ``np.unique(bits)`` sweep.

    Args:
        blocks: block indices to decode, in output order (may repeat).

    Returns:
        ``(values, counts)`` — the decoded values of those blocks
        concatenated, and the per-block counts (real, unpadded).
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    counts_all = packed.counts.astype(np.int64)
    counts = counts_all[blocks]
    n_blocks = counts.size
    if n_blocks == 0:
        return np.zeros(0, dtype=np.int64), counts

    bstarts = packed.block_starts.astype(np.int64)[blocks]
    data = packed.data
    references = data[bstarts].view(np.int32).astype(np.int64)

    padded_counts = _pad_counts(counts)
    minis_per_block = padded_counts // MINIBLOCK
    bw_words_per_block = -(-minis_per_block // 4)
    mini_offsets = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(minis_per_block, out=mini_offsets[1:])
    total_minis = int(mini_offsets[-1])
    mini_block_of = np.repeat(np.arange(n_blocks), minis_per_block)

    # Gather bitwidth bytes per miniblock.
    within = np.arange(total_minis) - mini_offsets[mini_block_of]
    bw_word_idx = bstarts[mini_block_of] + 1 + within // 4
    bits = ((data[bw_word_idx] >> ((within % 4) * 8)) & 0xFF).astype(np.int64)

    c = np.cumsum(bits)
    prior_bits = c - bits
    block_prior = prior_bits[mini_offsets[:-1]]
    mini_word_off = (
        (bstarts + 1 + bw_words_per_block)[mini_block_of]
        + prior_bits
        - block_prior[mini_block_of]
    )

    out = np.empty((total_minis, MINIBLOCK), dtype=np.int64)
    for b in np.unique(bits):
        sel = np.flatnonzero(bits == b)
        if b == 0:
            out[sel] = 0
            continue
        src = mini_word_off[sel][:, None] + np.arange(int(b))
        words = data[src.reshape(-1)]
        vals = bitio.unpack_bits(words, sel.size * MINIBLOCK, int(b))
        out[sel] = vals.reshape(sel.size, MINIBLOCK).astype(np.int64)

    padded_values = out.reshape(-1) + np.repeat(references, padded_counts)
    # Drop per-block padding.
    padded_offsets = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(padded_counts, out=padded_offsets[1:])
    keep = np.repeat(padded_offsets[:-1], counts) + _within_block_index(counts)
    return padded_values[keep], counts


def _within_block_index(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated."""
    total = int(counts.sum())
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total) - np.repeat(offsets, counts)
