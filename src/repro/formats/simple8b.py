"""Simple-8b: word-aligned packing with selectors (Anh & Moffat).

The 64-bit member of the Simple-N family the paper's related work covers
(Section 2.2): each output word spends 4 bits on a *selector* naming one
of 14 (count, bitwidth) combinations for its 60 payload bits — 60 1-bit
values, 30 2-bit values, ... 1 60-bit value — plus two run selectors for
240/120 consecutive zeros.  Encoding greedily packs as many of the next
values as the widest-needed bitwidth allows.

Word alignment makes decoding branch-light, but the rigid (count, width)
menu wastes bits against bit-aligned packing — the comparison
``repro.experiments.related_work`` quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import CascadePass, ColumnCodec, EncodedColumn
from repro.formats.gpufor import bit_length

#: (count, bitwidth) per selector 2..15 (selectors 0/1 are zero runs).
SELECTOR_TABLE: tuple[tuple[int, int], ...] = (
    (60, 1), (30, 2), (20, 3), (15, 4), (12, 5), (10, 6), (8, 7),
    (7, 8), (6, 10), (5, 12), (4, 15), (3, 20), (2, 30), (1, 60),
)
_ZERO_RUN_LONG = 240
_ZERO_RUN_SHORT = 120
_PAYLOAD_BITS = 60


class Simple8b(ColumnCodec):
    """64-bit word-aligned selector coding."""

    name = "simple8b"

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        if v.size and (v.min() < 0 or bit_length(v).max() > _PAYLOAD_BITS):
            raise ValueError("Simple-8b requires values in [0, 2**60)")

        widths = bit_length(v).astype(np.int64)
        words: list[int] = []
        i = 0
        n = v.size
        while i < n:
            # Zero-run selectors first.
            if v[i] == 0:
                run = 1
                limit = min(n - i, _ZERO_RUN_LONG)
                while run < limit and v[i + run] == 0:
                    run += 1
                if run >= _ZERO_RUN_LONG:
                    words.append(0)  # selector 0
                    i += _ZERO_RUN_LONG
                    continue
                if run >= _ZERO_RUN_SHORT:
                    words.append(1)  # selector 1
                    i += _ZERO_RUN_SHORT
                    continue
            # Greedy: the densest selector whose width covers the window.
            for selector, (count, bits) in enumerate(SELECTOR_TABLE, start=2):
                take = min(count, n - i)
                if take < count and selector != 15:
                    continue  # partial fills only in the widest selector
                window_max = int(widths[i : i + take].max())
                if window_max <= bits:
                    word = selector
                    for j in range(take):
                        word |= int(v[i + j]) << (4 + j * bits)
                    words.append(word)
                    i += take
                    break
            else:  # pragma: no cover - table covers 60 bits
                raise AssertionError("selector table exhausted")

        # Words can exceed 2**63; convert element-wise to avoid NumPy's
        # default int64 pathway overflowing.
        data = np.fromiter((np.uint64(w) for w in words), dtype=np.uint64, count=len(words))
        return EncodedColumn(
            codec=self.name,
            count=n,
            arrays={"data": data},
            dtype=values.dtype,
        )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        data = enc.arrays["data"]
        if data.size == 0:
            if enc.count:
                raise ValueError("corrupt Simple-8b stream: count mismatch")
            return np.zeros(0, dtype=enc.dtype)

        selectors = (data & np.uint64(0xF)).astype(np.int64)
        counts = np.empty(data.size, dtype=np.int64)
        counts[selectors == 0] = _ZERO_RUN_LONG
        counts[selectors == 1] = _ZERO_RUN_SHORT
        packed = selectors >= 2
        table_counts = np.array([c for c, _ in SELECTOR_TABLE], dtype=np.int64)
        counts[packed] = table_counts[selectors[packed] - 2]
        # The final word may be partially filled.
        offsets = np.zeros(data.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if offsets[-1] < enc.count or (data.size > 1 and offsets[-2] >= enc.count):
            raise ValueError("corrupt Simple-8b stream: count mismatch")
        counts[-1] -= int(offsets[-1]) - enc.count

        out = np.zeros(enc.count, dtype=np.int64)
        for selector in np.unique(selectors[packed]):
            count, bits = SELECTOR_TABLE[int(selector) - 2]
            sel = np.flatnonzero(selectors == selector)
            payloads = data[sel] >> np.uint64(4)
            shifts = (np.arange(count, dtype=np.uint64) * np.uint64(bits))[None, :]
            mask = np.uint64((1 << bits) - 1)
            values = ((payloads[:, None] >> shifts) & mask).astype(np.int64)
            dest = offsets[sel][:, None] + np.arange(count)
            keep = dest < enc.count
            out[dest[keep]] = values[keep]
        return out.astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        n = enc.count
        return [
            # Word starts are self-describing but output offsets need a
            # scan of per-word counts before parallel decode.
            CascadePass(
                name="scan-word-counts",
                read_bytes=2 * enc.nbytes,
                write_bytes=enc.arrays["data"].size * 4,
                compute_ops=enc.arrays["data"].size * 4,
            ),
            CascadePass(
                name="unpack-words",
                read_bytes=enc.nbytes,
                write_bytes=n * 4,
                compute_ops=n * 6,
            ),
        ]
