"""GPU-DFOR: delta + frame-of-reference + bit-packing (paper Section 5).

Delta encoding an entire array serializes decoding, so GPU-DFOR restarts
the delta chain at every **tile** (a set of ``D`` blocks of 128 integers,
Figure 6): each tile stores its first value separately and delta-encodes
the rest, padding with zero deltas so every block holds 128 entries.  The
deltas are then packed with the GPU-FOR block format
(:func:`repro.formats.gpufor.pack_blocks`), whose per-block FOR reference
absorbs negative deltas without zigzag tricks.

Decoding a tile is bit-unpacking followed by a block-wide inclusive prefix
sum — both on the tile in shared memory, which is what makes the scheme
tile-decompressible (Section 5.2).

Overhead is 0.75 bits/int (GPU-FOR) + one first-value word per tile of
``D * 128`` values = 0.81 bits/int at D=4, matching Section 9.2.
"""

from __future__ import annotations

import numpy as np

from repro.formats import gpufor
from repro.formats.base import (
    CascadePass,
    EncodedColumn,
    KernelResources,
    TileCodec,
    compact_tile_chunks_inplace,
    predicate_interval,
    require_mask_buffer,
    require_out_buffer,
    trim_tile_chunks,
)
from repro.formats.gpufor import (
    BLOCK,
    MINIBLOCK,
    MINIBLOCKS_PER_BLOCK,
    block_metadata,
    pack_blocks,
    unpack_block_indices,
    unpack_blocks,
)


class GpuDFor(TileCodec):
    """The paper's GPU-DFOR scheme (Section 5)."""

    name = "gpu-dfor"
    block_elements = BLOCK

    def __init__(self, d_blocks: int = 4):
        if d_blocks < 1:
            raise ValueError(f"d_blocks must be >= 1, got {d_blocks}")
        self._d_blocks = d_blocks

    # -- ColumnCodec --------------------------------------------------------

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        tile = self._d_blocks * BLOCK
        n = v.size

        if n:
            pad = (-n) % tile
            if pad:
                # Padding with the last value yields zero deltas.
                v = np.concatenate([v, np.full(pad, v[-1], dtype=np.int64)])
            n_tiles = v.size // tile
            first_values = v[::tile].copy()
            deltas = np.empty_like(v)
            deltas[0] = 0
            deltas[1:] = v[1:] - v[:-1]
            deltas[::tile] = 0  # restart the chain at each tile
        else:
            n_tiles = 0
            first_values = np.zeros(0, dtype=np.int64)
            deltas = v

        data, block_starts, bits = pack_blocks(deltas)
        header = np.array([n, BLOCK, gpufor.MINIBLOCKS_PER_BLOCK], dtype=np.uint32)
        if n_tiles and (
            first_values.max() >= 2**31 or first_values.min() < -(2**31)
        ):
            raise ValueError("first values do not fit in int32")
        enc = EncodedColumn(
            codec=self.name,
            count=n,
            arrays={
                "header": header,
                "block_starts": block_starts,
                "first_values": first_values.astype(np.int32),
                "data": data,
            },
            meta={"d_blocks": self._d_blocks, "mean_bits": float(bits.mean()) if bits.size else 0.0},
            dtype=values.dtype,
        )
        self.attach_tile_checksums(enc, v[:n])
        return enc

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        if enc.count == 0:
            return np.zeros(0, dtype=enc.dtype)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        tile = d * BLOCK
        n_blocks = enc.arrays["block_starts"].size - 1
        deltas = unpack_blocks(enc.arrays["data"], enc.arrays["block_starts"], 0, n_blocks)
        tiles = deltas.reshape(-1, tile)
        sums = np.cumsum(tiles, axis=1)
        values = sums + enc.arrays["first_values"].astype(np.int64)[:, None]
        vals = values.reshape(-1)[: enc.count]
        self.verify_decoded_tiles(enc, np.arange(self.num_tiles(enc)), vals)
        return vals.astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        decoded_bytes = enc.count * 4
        starts, lengths = self.tile_segments(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        return [
            CascadePass(
                name="unpack-bits",
                read_bytes=0,
                write_bytes=decoded_bytes,
                compute_ops=int(enc.count * 7),
                read_segments=(starts, lengths),
            ),
            CascadePass(
                name="add-reference",
                read_bytes=decoded_bytes,
                write_bytes=decoded_bytes,
                compute_ops=int(enc.count * 2),
                gathers=(n_blocks, 4),
            ),
            # Device-wide inclusive scan (decoupled-lookback style): the
            # input is read roughly twice (partials + final pass).
            CascadePass(
                name="prefix-sum",
                read_bytes=2 * decoded_bytes,
                write_bytes=decoded_bytes,
                compute_ops=int(enc.count * 4),
            ),
        ]

    # -- TileCodec ----------------------------------------------------------

    def decode_tile(self, enc: EncodedColumn, tile_idx: int) -> np.ndarray:
        self.check_tile_index(enc, tile_idx)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tile_idx * d
        last = min(first + d, n_blocks)
        deltas = unpack_blocks(enc.arrays["data"], enc.arrays["block_starts"], first, last)
        # The device function's second step: a block-wide Blelloch scan
        # over the tile's deltas in shared memory (Section 5.2).
        from repro.engine.primitives import block_prefix_sum

        sums, _ = block_prefix_sum(deltas, inclusive=True)
        values = sums + int(enc.arrays["first_values"][tile_idx])
        end = min((first + d) * BLOCK, enc.count) - first * BLOCK
        values = values[:end]
        self.verify_decoded_tiles(enc, np.array([tile_idx]), values)
        return values.astype(enc.dtype)

    def decode_tiles(self, enc: EncodedColumn, tile_indices: np.ndarray) -> np.ndarray:
        tiles = self._validate_tile_indices(enc, tile_indices)
        if tiles.size == 0:
            return np.zeros(0, dtype=enc.dtype)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        tile = d * BLOCK
        # The encoder pads to whole tiles, so every tile holds exactly
        # ``d`` blocks and the delta chains restart at tile boundaries —
        # one batched unpack plus a row-wise scan decodes the lot.
        blocks = (tiles[:, None] * d + np.arange(d)).reshape(-1)
        deltas = unpack_block_indices(
            enc.arrays["data"], enc.arrays["block_starts"], blocks
        ).reshape(tiles.size, tile)
        sums = np.cumsum(deltas, axis=1)
        values = sums + enc.arrays["first_values"].astype(np.int64)[tiles, None]
        keep = np.minimum((tiles + 1) * tile, enc.count) - tiles * tile
        vals = trim_tile_chunks(
            values.reshape(-1), np.full(tiles.size, tile, dtype=np.int64), keep
        )
        self.verify_decoded_tiles(enc, tiles, vals)
        return vals.astype(enc.dtype, copy=False)

    def decode_tiles_into(
        self, enc: EncodedColumn, tile_indices: np.ndarray, out: np.ndarray
    ) -> int:
        tiles = self._validate_tile_indices(enc, tile_indices)
        d = self.d_blocks(enc)
        tile = d * BLOCK
        require_out_buffer(out, tiles.size * tile)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        blocks = (tiles[:, None] * d + np.arange(d)).reshape(-1)
        deltas = unpack_block_indices(
            enc.arrays["data"], enc.arrays["block_starts"], blocks, out=out
        ).reshape(tiles.size, tile)
        # The in-place pipeline: deltas -> inclusive scan -> + first value,
        # all inside the caller's scratch.
        np.cumsum(deltas, axis=1, out=deltas)
        deltas += enc.arrays["first_values"].astype(np.int64)[tiles, None]
        keep = np.minimum((tiles + 1) * tile, enc.count) - tiles * tile
        written = compact_tile_chunks_inplace(
            out, np.full(tiles.size, tile, dtype=np.int64), keep
        )
        self.verify_decoded_tiles(enc, tiles, out[:written])
        return written

    def decode_filter_tiles_into(
        self,
        enc: EncodedColumn,
        tile_indices: np.ndarray,
        predicate,
        out: np.ndarray,
        mask: np.ndarray,
    ) -> int:
        """Fused decode+filter for GPU-DFOR.

        Deltas are not in the value domain, so the interval cannot be
        tested before the prefix sum; instead the predicate is evaluated
        in the same pass, on the padded tile matrix right after the scan
        and first-value add — one sweep while the tile is hot, no second
        full-column pass.  Values are always fully materialized, so
        checksum verification is preserved.
        """
        tiles = self._validate_tile_indices(enc, tile_indices)
        d = self.d_blocks(enc)
        tile = d * BLOCK
        require_out_buffer(out, tiles.size * tile)
        require_mask_buffer(mask, tiles.size * tile)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        blocks = (tiles[:, None] * d + np.arange(d)).reshape(-1)
        deltas = unpack_block_indices(
            enc.arrays["data"], enc.arrays["block_starts"], blocks, out=out
        ).reshape(tiles.size, tile)
        np.cumsum(deltas, axis=1, out=deltas)
        deltas += enc.arrays["first_values"].astype(np.int64)[tiles, None]
        padded = out[: tiles.size * tile]
        m2 = mask[: tiles.size * tile]
        interval = predicate_interval(predicate)
        if interval is None:
            m2[:] = predicate.row_mask(padded)
        else:
            lo, hi = interval
            np.greater_equal(padded, np.int64(lo), out=m2)
            m2 &= padded <= np.int64(hi)
        chunk = np.full(tiles.size, tile, dtype=np.int64)
        keep = np.minimum((tiles + 1) * tile, enc.count) - tiles * tile
        written = compact_tile_chunks_inplace(out, chunk, keep)
        compact_tile_chunks_inplace(mask, chunk, keep)
        self.verify_decoded_tiles(enc, tiles, out[:written])
        return written

    def tile_bounds(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        """Zero-decode bounds by bounding the tile's delta prefix sums.

        Every delta of miniblock ``k`` lies in ``[lo_k, hi_k]`` where
        ``lo_k`` is the block's FOR reference and ``hi_k = lo_k +
        2**bits_k - 1``.  A value at position ``p`` inside miniblock
        ``k`` is ``first + (full prior miniblocks) + (1..32 deltas of
        k)``, so per miniblock the reachable minimum is the exclusive
        prefix of ``32*lo`` plus ``min(lo, 32*lo)`` (and symmetrically
        for the maximum) — conservative, but metadata-only.
        """
        if enc.count == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        d = self.d_blocks(enc)
        references, bits = block_metadata(
            enc.arrays["data"], enc.arrays["block_starts"]
        )
        # Per-miniblock delta bounds, grouped per tile (the encoder pads
        # to whole tiles, so every tile holds exactly d blocks).
        minis_per_tile = d * MINIBLOCKS_PER_BLOCK
        lo = np.repeat(references, MINIBLOCKS_PER_BLOCK).reshape(-1, minis_per_tile)
        hi = (references[:, None] + (np.int64(1) << bits) - 1).reshape(
            -1, minis_per_tile
        )
        full_lo = lo * MINIBLOCK
        full_hi = hi * MINIBLOCK
        prefix_lo = np.cumsum(full_lo, axis=1) - full_lo  # exclusive prefix
        prefix_hi = np.cumsum(full_hi, axis=1) - full_hi
        reach_lo = (prefix_lo + np.minimum(lo, full_lo)).min(axis=1)
        reach_hi = (prefix_hi + np.maximum(hi, full_hi)).max(axis=1)
        first_values = enc.arrays["first_values"].astype(np.int64)
        return first_values + reach_lo, first_values + reach_hi

    def tile_segments(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        d = self.d_blocks(enc)
        starts_arr = enc.arrays["block_starts"].astype(np.int64)
        n_blocks = starts_arr.size - 1
        tile_first = np.arange(0, n_blocks, d, dtype=np.int64)
        tile_last = np.minimum(tile_first + d, n_blocks)
        data_start = starts_arr[tile_first] * 4
        data_len = (starts_arr[tile_last] - starts_arr[tile_first]) * 4
        base = int(starts_arr[-1]) * 4
        bs_start = base + tile_first * 4
        bs_len = (tile_last - tile_first + 1) * 4
        # One first-value word per tile, adjacent to the block_starts reads.
        fv_base = base + (n_blocks + 1) * 4
        fv_start = fv_base + np.arange(tile_first.size, dtype=np.int64) * 4
        fv_len = np.full(tile_first.size, 4, dtype=np.int64)
        return (
            np.concatenate([data_start, bs_start, fv_start]),
            np.concatenate([data_len, bs_len, fv_len]),
        )

    def kernel_resources(self, enc: EncodedColumn) -> KernelResources:
        d = self.d_blocks(enc)
        return KernelResources(
            registers_per_thread=14 + 2 * d,
            shared_mem_per_block=d * BLOCK * 4 + 256,
            compute_ops_per_element=11.0,
            tile_prologue_ops=5500.0,
            # unpack write + block-wide Blelloch scan reads/writes make
            # GPU-DFOR shared-memory bound (Section 9.3).
            shared_bytes_per_element=24.0,
        )
