"""GPU-BP: single-layer horizontal bit-packing (Mallia et al. [33]).

The Figure 9/10/11 baseline: bit-packs blocks of 128 values with a
per-block bitwidth, but — unlike GPU-FOR — applies **no frame of
reference** (and no delta or RLE layer), so the bitwidth is set by the
raw magnitude of the block maximum.  That is why it compresses date
columns and run-heavy columns poorly (Section 9.4).

The decoder is one pass but lacks the Section 4.2 optimizations
(single block per thread block, redundant per-thread offset loop), which
the kernel resources reflect.
"""

from __future__ import annotations

import numpy as np

from repro.formats import bitio
from repro.formats.base import (
    CascadePass,
    EncodedColumn,
    KernelResources,
    TileCodec,
    clamp_interval,
    compact_tile_chunks_inplace,
    exact_tile_bounds,
    predicate_interval,
    ragged_arange,
    require_mask_buffer,
    require_out_buffer,
    trim_tile_chunks,
)
from repro.formats.gpufor import BLOCK, bit_length

#: Words of per-block metadata (just the bitwidth word).
_HEADER_WORDS = 1


class GpuBp(TileCodec):
    """Bit-packing without FOR, per 128-value block."""

    name = "gpu-bp"
    block_elements = BLOCK

    def __init__(self, d_blocks: int = 1):
        if d_blocks < 1:
            raise ValueError(f"d_blocks must be >= 1, got {d_blocks}")
        self._d_blocks = d_blocks

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        if v.size and (v.min() < 0 or v.max() >= 2**32):
            raise ValueError("GPU-BP requires values in [0, 2**32)")
        n = v.size
        pad = (-n) % BLOCK
        if pad and n:
            v = np.concatenate([v, np.full(pad, v[-1], dtype=np.int64)])
        n_blocks = v.size // BLOCK

        blocks = v.reshape(n_blocks, BLOCK)
        bits = bit_length(blocks.max(axis=1)) if n_blocks else np.zeros(0, np.int64)
        bits = bits.astype(np.int64)
        block_words = _HEADER_WORDS + bits * BLOCK // 32
        block_starts = np.zeros(n_blocks + 1, dtype=np.int64)
        np.cumsum(block_words, out=block_starts[1:])

        data = np.zeros(int(block_starts[-1]), dtype=np.uint32)
        data[block_starts[:-1]] = bits.astype(np.uint32)
        for b in np.unique(bits):
            if b == 0:
                continue
            sel = np.flatnonzero(bits == b)
            packed = bitio.pack_bits(
                blocks[sel].reshape(-1).astype(np.uint64), int(b)
            ).reshape(sel.size, -1)
            dest = (block_starts[sel] + _HEADER_WORDS)[:, None] + np.arange(
                packed.shape[1]
            )
            data[dest.reshape(-1)] = packed.reshape(-1)

        # GPU-BP stores no reference, so its headers only bound values by
        # [0, 2**bits - 1]; cache exact per-tile bounds at encode time
        # instead (host-side zone-map metadata, not compressed bytes).
        tile_mins, tile_maxs = exact_tile_bounds(
            values.astype(np.int64), self._d_blocks * BLOCK
        )
        enc = EncodedColumn(
            codec=self.name,
            count=n,
            arrays={
                "header": np.array([n, BLOCK], dtype=np.uint32),
                "block_starts": block_starts.astype(np.uint32),
                "data": data,
            },
            meta={
                "d_blocks": self._d_blocks,
                "tile_mins": tile_mins,
                "tile_maxs": tile_maxs,
            },
            dtype=values.dtype,
        )
        self.attach_tile_checksums(enc, v[:n])
        return enc

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        self.validate_for_decode(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        out = self._decode_blocks(enc, 0, n_blocks)
        vals = out[: enc.count]
        self.verify_decoded_tiles(enc, np.arange(self.num_tiles(enc)), vals)
        return vals.astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        starts, lengths = self.tile_segments(enc)
        return [
            CascadePass(
                name="unpack-bits",
                read_bytes=0,
                write_bytes=enc.count * 4,
                compute_ops=enc.count * 7,
                read_segments=(starts, lengths),
            )
        ]

    # -- TileCodec ----------------------------------------------------------

    def decode_tile(self, enc: EncodedColumn, tile_idx: int) -> np.ndarray:
        self.check_tile_index(enc, tile_idx)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tile_idx * d
        last = min(first + d, n_blocks)
        vals = self._decode_blocks(enc, first, last)
        end = min((first + d) * BLOCK, enc.count) - first * BLOCK
        vals = vals[:end]
        self.verify_decoded_tiles(enc, np.array([tile_idx]), vals)
        return vals.astype(enc.dtype)

    def decode_tiles(self, enc: EncodedColumn, tile_indices: np.ndarray) -> np.ndarray:
        tiles = self._validate_tile_indices(enc, tile_indices)
        if tiles.size == 0:
            return np.zeros(0, dtype=enc.dtype)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tiles * d
        nb = np.minimum(first + d, n_blocks) - first
        blocks = np.repeat(first, nb) + ragged_arange(nb)
        vals = self._decode_block_indices(enc, blocks)
        keep = np.minimum((tiles + 1) * d * BLOCK, enc.count) - tiles * d * BLOCK
        vals = trim_tile_chunks(vals, nb * BLOCK, keep)
        self.verify_decoded_tiles(enc, tiles, vals)
        return vals.astype(enc.dtype, copy=False)

    def decode_tiles_into(
        self, enc: EncodedColumn, tile_indices: np.ndarray, out: np.ndarray
    ) -> int:
        tiles = self._validate_tile_indices(enc, tile_indices)
        d = self.d_blocks(enc)
        require_out_buffer(out, tiles.size * d * BLOCK)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tiles * d
        nb = np.minimum(first + d, n_blocks) - first
        blocks = np.repeat(first, nb) + ragged_arange(nb)
        self._decode_block_indices(enc, blocks, out=out)
        keep = np.minimum((tiles + 1) * d * BLOCK, enc.count) - tiles * d * BLOCK
        written = compact_tile_chunks_inplace(out, nb * BLOCK, keep)
        self.verify_decoded_tiles(enc, tiles, out[:written])
        return written

    def tile_segments(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        d = self.d_blocks(enc)
        starts_arr = enc.arrays["block_starts"].astype(np.int64)
        n_blocks = starts_arr.size - 1
        tile_first = np.arange(0, n_blocks, d, dtype=np.int64)
        tile_last = np.minimum(tile_first + d, n_blocks)
        data_start = starts_arr[tile_first] * 4
        data_len = (starts_arr[tile_last] - starts_arr[tile_first]) * 4
        base = int(starts_arr[-1]) * 4
        bs_start = base + tile_first * 4
        bs_len = (tile_last - tile_first + 1) * 4
        return (
            np.concatenate([data_start, bs_start]),
            np.concatenate([data_len, bs_len]),
        )

    def kernel_resources(self, enc: EncodedColumn) -> KernelResources:
        d = self.d_blocks(enc)
        # No multi-block processing, no offset precomputation: the
        # per-thread compute matches the paper's unoptimized kernel.
        return KernelResources(
            registers_per_thread=12 + 2 * d,
            shared_mem_per_block=d * BLOCK * 4 + 256,
            compute_ops_per_element=11.0,
            tile_prologue_ops=5500.0,
            shared_bytes_per_element=8.0,
        )

    # -- helpers ------------------------------------------------------------

    def _decode_blocks(self, enc: EncodedColumn, first: int, last: int) -> np.ndarray:
        if last - first <= 0:
            return np.zeros(0, dtype=np.int64)
        return self._decode_block_indices(enc, np.arange(first, last))

    def _decode_block_indices(
        self,
        enc: EncodedColumn,
        blocks: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode an arbitrary batch of blocks in one pass per bitwidth.

        ``out`` optionally supplies a 1-D int64 scratch of at least
        ``blocks.size * 128`` elements; the result is then a view into it.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        n = blocks.size
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        bstarts = enc.arrays["block_starts"].astype(np.int64)[blocks]
        data = enc.arrays["data"]
        bits = data[bstarts].astype(np.int64)
        if out is None:
            decoded = np.empty((n, BLOCK), dtype=np.int64)
        else:
            require_out_buffer(out, n * BLOCK)
            decoded = out[: n * BLOCK].reshape(n, BLOCK)
        # Regular-geometry fast path: one shared bitwidth over physically
        # consecutive blocks means equal payloads at a constant stride —
        # one contiguous unpack instead of a per-block word gather.
        b0 = int(bits[0])
        if b0 and bool((bits == b0).all()):
            payload = b0 * BLOCK // 32
            stride = payload + _HEADER_WORDS
            if n == 1 or bool((np.diff(bstarts) == stride).all()):
                flat = decoded.reshape(-1)
                bitio.unpack_bits_strided_into(
                    data, int(bstarts[0]) + _HEADER_WORDS, n,
                    payload, stride, BLOCK, b0, flat,
                )
                return flat
        for b in np.unique(bits):
            sel = np.flatnonzero(bits == b)
            if b == 0:
                decoded[sel] = 0
                continue
            words_per = int(b) * BLOCK // 32
            src = (bstarts[sel] + _HEADER_WORDS)[:, None] + np.arange(words_per)
            words = data[src.reshape(-1)]
            vals = bitio.unpack_bits(words, sel.size * BLOCK, int(b))
            decoded[sel] = vals.reshape(sel.size, BLOCK).astype(np.int64)
        return decoded.reshape(-1)

    def _decode_filter_block_indices(
        self,
        enc: EncodedColumn,
        blocks: np.ndarray,
        lo: int,
        hi: int,
        out: np.ndarray,
        mask: np.ndarray,
    ) -> np.ndarray:
        """Fused decode+filter core: interval test during unpack.

        GPU-BP stores raw magnitudes (no reference), so the interval is
        tested directly; blocks whose header bitwidth already proves
        ``[0, 2**b - 1]`` misses ``[lo, hi]`` are skipped (zero-filled,
        mask False).  Returns the per-block active flags.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        n = blocks.size
        if n == 0:
            return np.ones(0, dtype=bool)
        bstarts = enc.arrays["block_starts"].astype(np.int64)[blocks]
        data = enc.arrays["data"]
        bits = data[bstarts].astype(np.int64)
        block_hi = (np.int64(1) << bits) - np.int64(1)
        active = (block_hi >= lo) & (hi >= 0)
        decoded = out[: n * BLOCK].reshape(n, BLOCK)
        if bool(active.all()):
            self._decode_block_indices(enc, blocks, out=out)
        else:
            decoded[np.flatnonzero(~active)] = 0
            for b in np.unique(bits[active]):
                sel = np.flatnonzero(active & (bits == b))
                if b == 0:
                    decoded[sel] = 0
                    continue
                words_per = int(b) * BLOCK // 32
                src = (bstarts[sel] + _HEADER_WORDS)[:, None] + np.arange(words_per)
                words = data[src.reshape(-1)]
                vals = bitio.unpack_bits(words, sel.size * BLOCK, int(b))
                decoded[sel] = vals.reshape(sel.size, BLOCK).astype(np.int64)
        # Skipped blocks hold zeros; when a block is inactive its interval
        # misses [0, 2**b - 1] entirely (so 0 tests False) — except the
        # degenerate hi < 0 case, which the lo <= value leg handles since
        # then lo <= hi < 0 <= 0.  Either way no special-casing needed.
        m2 = mask[: n * BLOCK].reshape(n, BLOCK)
        np.greater_equal(decoded, np.int64(max(lo, 0)), out=m2)
        m2 &= decoded <= np.int64(hi)
        return active

    def decode_filter_tiles_into(
        self,
        enc: EncodedColumn,
        tile_indices: np.ndarray,
        predicate,
        out: np.ndarray,
        mask: np.ndarray,
    ) -> int:
        interval = predicate_interval(predicate)
        if interval is None:
            return super().decode_filter_tiles_into(
                enc, tile_indices, predicate, out, mask
            )
        tiles = self._validate_tile_indices(enc, tile_indices)
        d = self.d_blocks(enc)
        require_out_buffer(out, tiles.size * d * BLOCK)
        require_mask_buffer(mask, tiles.size * d * BLOCK)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        n_blocks = enc.arrays["block_starts"].size - 1
        first = tiles * d
        nb = np.minimum(first + d, n_blocks) - first
        blocks = np.repeat(first, nb) + ragged_arange(nb)
        lo, hi = clamp_interval(*interval)
        active = self._decode_filter_block_indices(enc, blocks, lo, hi, out, mask)
        keep = np.minimum((tiles + 1) * d * BLOCK, enc.count) - tiles * d * BLOCK
        written = compact_tile_chunks_inplace(out, nb * BLOCK, keep)
        compact_tile_chunks_inplace(mask, nb * BLOCK, keep)
        if bool(active.all()):
            self.verify_decoded_tiles(enc, tiles, out[:written])
        return written
