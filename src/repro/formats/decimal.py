"""Fixed-point decimal columns.

Analytics engines store decimals as scaled integers (a price of 12.34
with scale 2 is the integer 1234), which makes every integer compression
scheme apply verbatim — the paper's "integer, decimal, and
dictionary-encoded strings" coverage.  This front end handles the scaling,
validates that the requested scale is lossless for the data, and
compresses the scaled integers with any registered codec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import EncodedColumn
from repro.formats.registry import get_codec


@dataclass
class EncodedDecimalColumn:
    """A decimal column: compressed scaled integers + the scale."""

    scaled: EncodedColumn
    scale: int
    codec_name: str

    @property
    def count(self) -> int:
        return self.scaled.count

    @property
    def nbytes(self) -> int:
        return self.scaled.nbytes

    @property
    def bits_per_value(self) -> float:
        if self.count == 0:
            return 0.0
        return self.nbytes * 8 / self.count


def encode_decimals(
    values: np.ndarray,
    scale: int = 2,
    codec_name: str | None = None,
) -> EncodedDecimalColumn:
    """Compress a float column as scale-``scale`` fixed-point decimals.

    Args:
        values: 1-D float array whose entries are exact multiples of
            ``10**-scale`` (up to float rounding); anything else raises,
            because silently rounding money would be a bug factory.
        scale: decimal digits after the point.
        codec_name: integer codec; ``None`` lets GPU-* choose.

    Returns:
        An :class:`EncodedDecimalColumn`.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("encode_decimals expects a 1-D array")
    if not 0 <= scale <= 9:
        raise ValueError(f"scale must be in [0, 9], got {scale}")
    factor = 10**scale
    scaled_f = values * factor
    scaled = np.rint(scaled_f)
    if not np.allclose(scaled_f, scaled, rtol=0, atol=1e-6 * factor):
        raise ValueError(
            f"values are not exact multiples of 10**-{scale}; "
            "pick a larger scale"
        )
    ints = scaled.astype(np.int64)
    if codec_name is None:
        # Imported lazily: repro.core depends on repro.formats, so the
        # hybrid chooser cannot be a module-level import here.
        from repro.core.hybrid import choose_gpu_star

        choice = choose_gpu_star(ints)
        enc, name = choice.encoded, choice.codec_name
    else:
        enc, name = get_codec(codec_name).encode(ints), codec_name
    return EncodedDecimalColumn(scaled=enc, scale=scale, codec_name=name)


def decode_decimals(column: EncodedDecimalColumn) -> np.ndarray:
    """Materialize the decimal column as float64 (exact for the scale)."""
    ints = get_codec(column.codec_name).decode(column.scaled).astype(np.int64)
    return ints / 10**column.scale
