"""Structural validation of encoded columns.

A production column store must detect corrupt compressed data before
decoding walks off an array, so every format gets a structural checker:
:func:`validate_encoded` verifies the invariants the decoders rely on
(monotone block starts, headers consistent with payload sizes, run counts
covering blocks, ...) and raises :class:`CorruptColumnError` with a
description of the first violation.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import EncodedColumn
from repro.formats.gpufor import BLOCK, MINIBLOCKS_PER_BLOCK
from repro.formats.gpurfor import RFOR_BLOCK


class CorruptColumnError(ValueError):
    """An encoded column violates its format's structural invariants."""


class CorruptTileError(CorruptColumnError):
    """Structured corruption report: which column, which tile, and why.

    Raised by the hardened decode paths (strict pre-decode validation,
    per-tile CRC verification, the framed container, and the corruption
    guard that converts raw decode faults).  ``tile_id`` is ``-1`` when
    the fault is column-wide (metadata, framing) rather than tied to one
    decode tile.
    """

    def __init__(self, column: str, tile_id: int, reason: str):
        self.column = column
        self.tile_id = int(tile_id)
        self.reason = reason
        where = f"tile {self.tile_id}" if self.tile_id >= 0 else "metadata"
        super().__init__(f"corrupt column {column!r} ({where}): {reason}")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CorruptColumnError(message)


def _check_starts(starts: np.ndarray, data_words: int, label: str) -> None:
    s = starts.astype(np.int64)
    _require(s.size >= 1, f"{label}: empty block-starts array")
    _require(bool(s[0] == 0), f"{label}: first block start must be 0")
    _require(bool(np.all(np.diff(s) >= 0)), f"{label}: block starts not monotone")
    _require(
        int(s[-1]) <= data_words,
        f"{label}: block starts point past the data array",
    )


def _check_gpufor_blocks(
    data: np.ndarray, starts: np.ndarray, label: str
) -> None:
    s = starts.astype(np.int64)
    n_blocks = s.size - 1
    if n_blocks == 0:
        return
    bw_words = data[s[:-1] + 1]
    widths = np.stack(
        [(bw_words >> (8 * j)) & 0xFF for j in range(MINIBLOCKS_PER_BLOCK)], axis=1
    ).astype(np.int64)
    _require(bool(widths.max() <= 32), f"{label}: miniblock bitwidth exceeds 32")
    expected = 2 + widths.sum(axis=1)
    actual = np.diff(s)
    _require(
        bool(np.array_equal(expected, actual)),
        f"{label}: block sizes disagree with bitwidth words",
    )


def validate_encoded(enc: EncodedColumn) -> None:
    """Check ``enc``'s structural invariants; raises on the first violation.

    Supported formats: gpu-for, gpu-dfor, gpu-rfor, gpu-bp, gpu-simdbp128,
    gpu-vbyte, pfor, nsf, nsv, rle, simple8b, delta, dict.  Unknown codecs
    only get generic checks (non-negative count, arrays present).
    """
    _require(enc.count >= 0, "negative element count")
    _require(bool(enc.arrays), "no physical arrays")

    if enc.codec in ("gpu-for", "gpu-dfor"):
        data = enc.arrays["data"]
        starts = enc.arrays["block_starts"]
        _check_starts(starts, data.size, enc.codec)
        n_blocks = starts.size - 1
        _require(
            n_blocks * BLOCK >= enc.count,
            f"{enc.codec}: blocks cover fewer than count elements",
        )
        _check_gpufor_blocks(data, starts, enc.codec)
        if enc.codec == "gpu-dfor":
            d = int(enc.meta.get("d_blocks", 4))
            tiles = -(-n_blocks // d)
            _require(
                enc.arrays["first_values"].size == tiles,
                "gpu-dfor: first_values count disagrees with tile count",
            )

    elif enc.codec == "gpu-rfor":
        counts = enc.arrays["run_counts"].astype(np.int64)
        _require(bool(np.all(counts >= 1)) or counts.size == 0,
                 "gpu-rfor: block with zero runs")
        _require(bool(np.all(counts <= RFOR_BLOCK)),
                 "gpu-rfor: more runs than block positions")
        _require(
            counts.size * RFOR_BLOCK >= enc.count,
            "gpu-rfor: blocks cover fewer than count elements",
        )
        for stream in ("values", "lengths"):
            _check_starts(
                enc.arrays[f"{stream}_starts"],
                enc.arrays[f"{stream}_data"].size,
                f"gpu-rfor/{stream}",
            )
            _require(
                enc.arrays[f"{stream}_starts"].size - 1 == counts.size,
                f"gpu-rfor/{stream}: stream blocks disagree with run counts",
            )

    elif enc.codec == "gpu-bp":
        data = enc.arrays["data"]
        starts = enc.arrays["block_starts"]
        _check_starts(starts, data.size, "gpu-bp")
        s = starts.astype(np.int64)
        if s.size > 1:
            widths = data[s[:-1]].astype(np.int64)
            _require(bool(widths.max(initial=0) <= 32), "gpu-bp: bitwidth exceeds 32")
            expected = 1 + widths * BLOCK // 32
            _require(
                bool(np.array_equal(expected, np.diff(s))),
                "gpu-bp: block sizes disagree with bitwidths",
            )

    elif enc.codec == "nsf":
        width = int(enc.meta.get("width", 0))
        _require(width in (1, 2, 4), "nsf: invalid width")
        _require(
            enc.arrays["data"].size == enc.count,
            "nsf: data length disagrees with count",
        )

    elif enc.codec == "nsv":
        length_bytes = enc.arrays["lengths"]
        _require(
            length_bytes.size * 4 >= enc.count,
            "nsv: length stream too short",
        )
        quads = np.stack(
            [(length_bytes >> (2 * j)) & 0b11 for j in range(4)], axis=1
        ).reshape(-1)[: enc.count]
        widths = quads.astype(np.int64) + 1
        _require(
            int(widths.sum()) == enc.arrays["data"].size,
            "nsv: value widths do not cover the byte stream",
        )

    elif enc.codec == "rle":
        lengths = enc.arrays["lengths"].astype(np.int64)
        _require(bool(np.all(lengths >= 1)) or lengths.size == 0,
                 "rle: non-positive run length")
        _require(
            int(lengths.sum()) == enc.count,
            "rle: run lengths do not sum to count",
        )
        _require(
            enc.arrays["values"].size == lengths.size,
            "rle: values/lengths misaligned",
        )

    elif enc.codec == "gpu-simdbp128":
        data = enc.arrays["data"]
        starts = enc.arrays["block_starts"]
        _check_starts(starts, data.size, "gpu-simdbp128")
        s = starts.astype(np.int64)
        n_blocks = s.size - 1
        _require(
            n_blocks * 4096 >= enc.count,
            "gpu-simdbp128: blocks cover fewer than count elements",
        )
        if n_blocks:
            bits = data[s[:-1] + 1].astype(np.int64)
            _require(bool(bits.max() <= 32), "gpu-simdbp128: bitwidth exceeds 32")
            expected = 2 + bits * (4096 // 32)
            _require(
                bool(np.array_equal(expected, np.diff(s))),
                "gpu-simdbp128: block sizes disagree with bitwidth words",
            )

    elif enc.codec == "pfor":
        data = enc.arrays["data"]
        starts = enc.arrays["block_starts"]
        _check_starts(starts, data.size, "pfor")
        s = starts.astype(np.int64)
        n_blocks = s.size - 1
        _require(
            n_blocks * BLOCK >= enc.count,
            "pfor: blocks cover fewer than count elements",
        )
        if n_blocks:
            header = data[s[:-1] + 1].astype(np.int64)
            bits = header & 0xFF
            exc = header >> 8
            _require(bool(bits.max() <= 32), "pfor: bitwidth exceeds 32")
            _require(bool(exc.max() <= BLOCK), "pfor: exception count exceeds block")
            expected = 2 + 4 * bits + -(-exc // 4) + exc
            _require(
                bool(np.array_equal(expected, np.diff(s))),
                "pfor: block sizes disagree with headers",
            )

    elif enc.codec == "gpu-vbyte":
        starts = enc.arrays["block_starts"]
        _check_starts(starts, enc.arrays["data"].size, "gpu-vbyte")
        _require(
            int(starts[-1]) == enc.arrays["data"].size,
            "gpu-vbyte: block starts do not cover the byte stream",
        )

    elif enc.codec == "simple8b":
        _require(
            enc.arrays["data"].dtype == np.uint64,
            "simple8b: payload words must be uint64",
        )

    elif enc.codec == "delta":
        _require(
            enc.arrays["deltas"].size == enc.count,
            "delta: delta stream length disagrees with count",
        )

    elif enc.codec == "dict":
        width = int(enc.meta.get("width", 0))
        _require(width in (1, 2, 4), "dict: invalid code width")
        codes = enc.arrays["codes"]
        dictionary = enc.arrays["dictionary"]
        _require(codes.size == enc.count, "dict: code count disagrees with count")
        _require(
            int(enc.meta.get("cardinality", dictionary.size)) == dictionary.size,
            "dict: cardinality disagrees with dictionary size",
        )
        if codes.size:
            _require(
                int(codes.max()) < dictionary.size,
                "dict: code points past the dictionary",
            )


def validate_decode_safety(enc: EncodedColumn, column: str | None = None) -> None:
    """Strict pre-decode validation, reported as :class:`CorruptTileError`.

    The hardened decode entry point: every invariant a decoder trusts
    (bitwidths, offsets, run counts, stream lengths) is checked *before*
    any unpack touches the payload, so corrupt metadata surfaces as a
    structured error instead of garbage output or a raw numpy fault.
    """
    if column is None:
        column = str(enc.meta.get("column", "<unnamed>"))
    try:
        validate_encoded(enc)
    except CorruptTileError:
        raise
    except CorruptColumnError as exc:
        raise CorruptTileError(column, -1, str(exc)) from exc
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        # A mangled container can be missing arrays entirely or hold
        # arrays too short for the validator's own reads.
        raise CorruptTileError(
            column, -1, f"unreadable metadata: {type(exc).__name__}: {exc}"
        ) from exc

    crcs = enc.meta.get("tile_crcs")
    if crcs is not None and np.asarray(crcs).ndim != 1:
        raise CorruptTileError(column, -1, "checksum table is not one-dimensional")
