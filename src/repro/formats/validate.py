"""Structural validation of encoded columns.

A production column store must detect corrupt compressed data before
decoding walks off an array, so every format gets a structural checker:
:func:`validate_encoded` verifies the invariants the decoders rely on
(monotone block starts, headers consistent with payload sizes, run counts
covering blocks, ...) and raises :class:`CorruptColumnError` with a
description of the first violation.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import EncodedColumn
from repro.formats.gpufor import BLOCK, MINIBLOCKS_PER_BLOCK
from repro.formats.gpurfor import RFOR_BLOCK


class CorruptColumnError(ValueError):
    """An encoded column violates its format's structural invariants."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CorruptColumnError(message)


def _check_starts(starts: np.ndarray, data_words: int, label: str) -> None:
    s = starts.astype(np.int64)
    _require(s.size >= 1, f"{label}: empty block-starts array")
    _require(bool(s[0] == 0), f"{label}: first block start must be 0")
    _require(bool(np.all(np.diff(s) >= 0)), f"{label}: block starts not monotone")
    _require(
        int(s[-1]) <= data_words,
        f"{label}: block starts point past the data array",
    )


def _check_gpufor_blocks(
    data: np.ndarray, starts: np.ndarray, label: str
) -> None:
    s = starts.astype(np.int64)
    n_blocks = s.size - 1
    if n_blocks == 0:
        return
    bw_words = data[s[:-1] + 1]
    widths = np.stack(
        [(bw_words >> (8 * j)) & 0xFF for j in range(MINIBLOCKS_PER_BLOCK)], axis=1
    ).astype(np.int64)
    _require(bool(widths.max() <= 32), f"{label}: miniblock bitwidth exceeds 32")
    expected = 2 + widths.sum(axis=1)
    actual = np.diff(s)
    _require(
        bool(np.array_equal(expected, actual)),
        f"{label}: block sizes disagree with bitwidth words",
    )


def validate_encoded(enc: EncodedColumn) -> None:
    """Check ``enc``'s structural invariants; raises on the first violation.

    Supported formats: gpu-for, gpu-dfor, gpu-rfor, gpu-bp, nsf, nsv, rle.
    Unknown codecs only get generic checks (non-negative count, arrays
    present).
    """
    _require(enc.count >= 0, "negative element count")
    _require(bool(enc.arrays), "no physical arrays")

    if enc.codec in ("gpu-for", "gpu-dfor"):
        data = enc.arrays["data"]
        starts = enc.arrays["block_starts"]
        _check_starts(starts, data.size, enc.codec)
        n_blocks = starts.size - 1
        _require(
            n_blocks * BLOCK >= enc.count,
            f"{enc.codec}: blocks cover fewer than count elements",
        )
        _check_gpufor_blocks(data, starts, enc.codec)
        if enc.codec == "gpu-dfor":
            d = int(enc.meta.get("d_blocks", 4))
            tiles = -(-n_blocks // d)
            _require(
                enc.arrays["first_values"].size == tiles,
                "gpu-dfor: first_values count disagrees with tile count",
            )

    elif enc.codec == "gpu-rfor":
        counts = enc.arrays["run_counts"].astype(np.int64)
        _require(bool(np.all(counts >= 1)) or counts.size == 0,
                 "gpu-rfor: block with zero runs")
        _require(bool(np.all(counts <= RFOR_BLOCK)),
                 "gpu-rfor: more runs than block positions")
        _require(
            counts.size * RFOR_BLOCK >= enc.count,
            "gpu-rfor: blocks cover fewer than count elements",
        )
        for stream in ("values", "lengths"):
            _check_starts(
                enc.arrays[f"{stream}_starts"],
                enc.arrays[f"{stream}_data"].size,
                f"gpu-rfor/{stream}",
            )
            _require(
                enc.arrays[f"{stream}_starts"].size - 1 == counts.size,
                f"gpu-rfor/{stream}: stream blocks disagree with run counts",
            )

    elif enc.codec == "gpu-bp":
        data = enc.arrays["data"]
        starts = enc.arrays["block_starts"]
        _check_starts(starts, data.size, "gpu-bp")
        s = starts.astype(np.int64)
        if s.size > 1:
            widths = data[s[:-1]].astype(np.int64)
            _require(bool(widths.max(initial=0) <= 32), "gpu-bp: bitwidth exceeds 32")
            expected = 1 + widths * BLOCK // 32
            _require(
                bool(np.array_equal(expected, np.diff(s))),
                "gpu-bp: block sizes disagree with bitwidths",
            )

    elif enc.codec == "nsf":
        width = int(enc.meta.get("width", 0))
        _require(width in (1, 2, 4), "nsf: invalid width")
        _require(
            enc.arrays["data"].size == enc.count,
            "nsf: data length disagrees with count",
        )

    elif enc.codec == "nsv":
        _require(
            enc.arrays["lengths"].size * 4 >= enc.count,
            "nsv: length stream too short",
        )

    elif enc.codec == "rle":
        lengths = enc.arrays["lengths"].astype(np.int64)
        _require(bool(np.all(lengths >= 1)) or lengths.size == 0,
                 "rle: non-positive run length")
        _require(
            int(lengths.sum()) == enc.count,
            "rle: run lengths do not sum to count",
        )
        _require(
            enc.arrays["values"].size == lengths.size,
            "rle: values/lengths misaligned",
        )
