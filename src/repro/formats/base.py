"""Codec interfaces and the encoded-column container.

Every compression scheme in the reproduction — the paper's GPU-FOR /
GPU-DFOR / GPU-RFOR, the ablation GPU-SIMDBP128, and all baselines — is a
:class:`ColumnCodec`.  Schemes that satisfy the paper's two tile properties
(Section 3: tile-granularity data format, tile-based decompression routine)
additionally implement :class:`TileCodec`, which is what the tile-based
decompression executor and the Crystal engine integration consume.

The split mirrors the paper's architecture: the *format* (this package)
defines layout and bit-exact encode/decode, while the *execution models*
(:mod:`repro.core.tile_decompress`, :mod:`repro.core.cascade`) decide how
many kernel passes decoding costs on the simulated GPU.
"""

from __future__ import annotations

import abc
import contextlib
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

# -- integrity knobs ---------------------------------------------------------
#
# The hardened container attaches per-tile CRC32 checksums at encode time
# and verifies them on decode.  Both halves are controlled independently:
# REPRO_CHECKSUMS=1 (or ``set_checksums(True)``) makes *every* encode
# attach checksums — ``encode_with_checksums`` always does regardless —
# and REPRO_VERIFY picks the verification mode — "lazy" (default: each
# tile verified once per decoded image, tracked in a runtime bitmap),
# "always" (every decode re-verifies, for paranoid tests), or "off".

_VERIFY_MODES = ("off", "lazy", "always")
_FALSY = ("0", "off", "false", "no")

_checksums_enabled = os.environ.get("REPRO_CHECKSUMS", "0").lower() not in _FALSY
_verify_mode = os.environ.get("REPRO_VERIFY", "lazy").lower()
if _verify_mode not in _VERIFY_MODES:
    _verify_mode = "lazy"


def checksums_enabled() -> bool:
    """Whether plain ``encode`` attaches per-tile CRC32 checksums.

    Off by default so raw codec output is byte-for-byte what it was
    before the integrity layer existed; the hardened entry point
    ``encode_with_checksums`` always attaches them.
    """
    return _checksums_enabled


def set_checksums(enabled: bool) -> bool:
    """Toggle checksum attachment at encode; returns the previous setting."""
    global _checksums_enabled
    previous = _checksums_enabled
    _checksums_enabled = bool(enabled)
    return previous


def verify_mode() -> str:
    """Current decode verification mode: ``off``, ``lazy``, or ``always``."""
    return _verify_mode


def set_verify_mode(mode: str) -> str:
    """Set the decode verification mode; returns the previous mode."""
    if mode not in _VERIFY_MODES:
        raise ValueError(f"verify mode must be one of {_VERIFY_MODES}, got {mode!r}")
    global _verify_mode
    previous = _verify_mode
    _verify_mode = mode
    return previous


def crc32_values(values: np.ndarray) -> int:
    """CRC32 of logical values in canonical form (little-endian int64).

    Every checksum in the container uses this basis so digests agree no
    matter which decode path produced the values (``decode`` in the
    column's dtype, ``decode_tiles_into`` in int64 scratch).
    """
    v = np.ascontiguousarray(np.asarray(values), dtype="<i8")
    return zlib.crc32(v)


@contextlib.contextmanager
def corruption_guard(column: str, tile_id: int = -1, what: str = "decode"):
    """Convert raw decode faults into a structured :class:`CorruptTileError`.

    Wrapped around decode entry points so a mangled payload that slips
    past validation (numpy fancy-index misses, shape mismatches, overflow
    in derived offsets, allocation bombs) surfaces as a corruption report
    instead of an anonymous exception deep inside a worker thread.
    Existing :class:`CorruptTileError` reports pass through untouched.
    """
    from repro.formats.validate import CorruptTileError

    try:
        yield
    except CorruptTileError:
        raise
    except (
        IndexError,
        KeyError,
        ValueError,
        TypeError,
        OverflowError,
        ZeroDivisionError,
        MemoryError,
    ) as exc:
        raise CorruptTileError(
            column, tile_id, f"{what} fault: {type(exc).__name__}: {exc}"
        ) from exc


@dataclass
class EncodedColumn:
    """A compressed column: named physical arrays plus scheme metadata.

    Attributes:
        codec: registry name of the codec that produced this column.
        count: logical number of elements.
        arrays: the physical buffers as they would sit in GPU global
            memory (e.g. ``data``, ``block_starts``, ``first_values``).
        meta: scheme parameters needed to decode (block size, D, ...).
        dtype: dtype of the original column.
    """

    codec: str
    count: int
    arrays: dict[str, np.ndarray]
    meta: dict = field(default_factory=dict)
    dtype: np.dtype = np.dtype(np.int32)

    @property
    def nbytes(self) -> int:
        """Total compressed footprint in bytes (all physical arrays)."""
        return sum(a.nbytes for a in self.arrays.values())

    @property
    def column_name(self) -> str:
        """Logical column name for error reports (``<unnamed>`` if unset)."""
        return str(self.meta.get("column", "<unnamed>"))

    @property
    def bits_per_int(self) -> float:
        """Compressed bits per logical element (the paper's y-axis metric)."""
        if self.count == 0:
            return 0.0
        return self.nbytes * 8 / self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncodedColumn(codec={self.codec!r}, count={self.count}, "
            f"nbytes={self.nbytes}, bits_per_int={self.bits_per_int:.2f})"
        )


@dataclass(frozen=True)
class KernelResources:
    """Per-kernel resource footprint of a codec's tile decoder.

    These drive the occupancy calculation (Figure 5's D sweep and the
    Section 4.3 vertical-layout ablation both fall out of them).

    Attributes:
        registers_per_thread: registers the decode device function needs.
        shared_mem_per_block: bytes of shared memory per thread block.
        compute_ops_per_element: scalar ops to decode one element.
        tile_prologue_ops: fixed per-tile work (block start resolution,
            offset precomputation, barriers).
        shared_bytes_per_element: shared-memory traffic per element.
    """

    registers_per_thread: int
    shared_mem_per_block: int
    compute_ops_per_element: float
    tile_prologue_ops: float = 0.0
    shared_bytes_per_element: float = 8.0


@dataclass(frozen=True)
class CascadePass:
    """One kernel pass of the cascading decompression baseline (Figure 2
    left): what it reads, what it writes, and how much it computes.

    ``read_segment_key`` optionally names an encoded array whose per-block
    segments are read instead of a linear sweep (the first unpack pass
    reads scattered compressed blocks; later passes sweep dense
    intermediates).
    """

    name: str
    read_bytes: int
    write_bytes: int
    compute_ops: int = 0
    #: (starts, lengths) byte segments read in addition to read_bytes.
    read_segments: tuple[np.ndarray, np.ndarray] | None = None
    #: Uncoalesced accesses: (count, element_bytes[, region_bytes]) —
    #: the optional region bound caps dense gathers/scatters at one full
    #: sweep of the touched array.
    gathers: tuple[int, ...] | None = None
    scatters: tuple[int, ...] | None = None


class ColumnCodec(abc.ABC):
    """A lossless integer column compression scheme."""

    #: Registry name ("gpu-for", "nsf", ...); set by each subclass.
    name: ClassVar[str]

    @abc.abstractmethod
    def encode(self, values: np.ndarray) -> EncodedColumn:
        """Compress ``values`` (any integer dtype) into an encoded column."""

    @abc.abstractmethod
    def decode(self, enc: EncodedColumn) -> np.ndarray:
        """Decompress the full column (bit-exact inverse of :meth:`encode`)."""

    def check_roundtrip(self, values: np.ndarray) -> EncodedColumn:
        """Encode, verify decode reproduces the input, return the encoding.

        A convenience used by examples and the hybrid chooser's paranoid
        mode; raises ``ValueError`` on any mismatch.
        """
        values = np.asarray(values)
        enc = self.encode(values)
        out = self.decode(enc)
        if out.shape != values.shape or not np.array_equal(
            out.astype(np.int64), values.astype(np.int64)
        ):
            raise ValueError(f"codec {self.name} failed round-trip")
        return enc

    @abc.abstractmethod
    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        """Kernel passes a layer-at-a-time decompressor needs (Figure 2 left)."""

    # -- pushdown metadata ---------------------------------------------------

    def bounds_elements(self, enc: EncodedColumn) -> int:
        """Logical elements covered by one :meth:`tile_bounds` entry."""
        raise NotImplementedError(f"codec {self.name} exposes no tile bounds")

    def tile_bounds(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        """Per-tile inclusive value bounds for predicate pushdown.

        Returns ``(mins, maxs)`` int64 arrays with one entry per group of
        :meth:`bounds_elements` logical values, satisfying the **bounds
        contract**: every logical value ``v`` of tile ``t`` obeys
        ``mins[t] <= v <= maxs[t]``.  Bounds may be conservative (not
        attained) but must never exclude a stored value — a query may
        skip decoding any tile whose bounds rule out its predicate.

        The block formats derive these for free from the metadata they
        already store (FOR references and miniblock bitwidths); codecs
        without bounding metadata cache exact bounds at encode time.
        """
        raise NotImplementedError(f"codec {self.name} exposes no tile bounds")


def exact_tile_bounds(
    values: np.ndarray, tile_elements: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-tile ``[min, max]`` of ``values`` in tiles of ``tile_elements``.

    The encode-time fallback for codecs whose physical metadata does not
    bound their values: computed once from the raw column while it is
    still in hand, then carried in ``EncodedColumn.meta`` (host-side
    zone-map metadata, not part of the compressed device footprint).

    Returns:
        ``(mins, maxs)`` int64 arrays of ``ceil(len(values)/tile_elements)``
        entries; the last tile may cover fewer than ``tile_elements``.
    """
    if tile_elements < 1:
        raise ValueError(f"tile_elements must be >= 1, got {tile_elements}")
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    edges = np.arange(0, values.size, tile_elements, dtype=np.int64)
    return (
        np.minimum.reduceat(values, edges),
        np.maximum.reduceat(values, edges),
    )


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated (vectorized)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total) - np.repeat(offsets, counts)


def require_out_buffer(out: np.ndarray, needed: int) -> None:
    """Validate a caller-provided decode scratch buffer.

    Out-buffer decode (:meth:`TileCodec.decode_tiles_into`) writes int64
    values — the engine's working dtype — directly into caller memory, so
    the buffer must be a 1-D contiguous int64 array with room for the
    whole *padded* batch (``n_tiles * tile_elements``), not just the
    logical values.
    """
    if not isinstance(out, np.ndarray) or out.dtype != np.int64 or out.ndim != 1:
        raise ValueError("out buffer must be a 1-D int64 ndarray")
    if not out.flags.c_contiguous:
        raise ValueError("out buffer must be C-contiguous")
    if out.size < needed:
        raise ValueError(
            f"out buffer holds {out.size} elements, need {needed}"
        )


def require_mask_buffer(mask: np.ndarray, needed: int) -> None:
    """Validate a caller-provided fused-filter mask buffer.

    Fused decode+filter (:meth:`TileCodec.decode_filter_tiles_into`)
    writes one bool per decoded element, with the same padded-batch
    capacity contract as :func:`require_out_buffer`.
    """
    if not isinstance(mask, np.ndarray) or mask.dtype != np.bool_ or mask.ndim != 1:
        raise ValueError("mask buffer must be a 1-D bool ndarray")
    if not mask.flags.c_contiguous:
        raise ValueError("mask buffer must be C-contiguous")
    if mask.size < needed:
        raise ValueError(
            f"mask buffer holds {mask.size} elements, need {needed}"
        )


def predicate_interval(predicate) -> tuple[int, int] | None:
    """``predicate.as_interval()`` via duck typing (codecs cannot import
    the engine's predicate IR); ``None`` when the predicate is not a
    single inclusive interval."""
    fn = getattr(predicate, "as_interval", None)
    if fn is None:
        return None
    return fn()


def clamp_interval(lo: int, hi: int, bound: int = 2**34) -> tuple[int, int]:
    """Clamp query bounds into a codec's comparable value domain.

    Every tile codec stores values as ``int32 reference + uint32 diff``,
    so decodable values lie strictly inside ``(-2**33, 2**33)``; clamping
    ``[lo, hi]`` to ``[-bound, bound]`` preserves every comparison while
    keeping the shifted-domain thresholds ``lo - reference`` /
    ``hi - reference`` free of int64 overflow (``Range`` encodes open
    bounds as the full int64 extremes).
    """
    return max(int(lo), -bound), min(int(hi), bound)


def compact_tile_chunks_inplace(
    out: np.ndarray, chunk_lens: np.ndarray, keep_lens: np.ndarray
) -> int:
    """In-place counterpart of :func:`trim_tile_chunks` for out-buffer decode.

    ``out[:sum(chunk_lens)]`` holds concatenated block-padded tile chunks;
    on return ``out[:kept]`` holds each tile's first ``keep_lens[i]``
    elements, where ``kept`` (the return value) is ``sum(keep_lens)``.
    The common cases are free: full chunks need nothing, and when only the
    *final* chunk is padded (any contiguous tile range — only the column's
    last tile is ever short) the logical values are already a prefix.
    """
    chunk_lens = np.asarray(chunk_lens, dtype=np.int64)
    keep_lens = np.asarray(keep_lens, dtype=np.int64)
    total = int(chunk_lens.sum())
    kept = int(keep_lens.sum())
    if kept == total:
        return kept
    if np.array_equal(chunk_lens[:-1], keep_lens[:-1]):
        return kept  # padding only in the tail chunk: values are a prefix
    within = ragged_arange(chunk_lens)
    mask = within < np.repeat(keep_lens, chunk_lens)
    out[:kept] = out[:total][mask]
    return kept


class DecodeArena:
    """Reusable decode scratch — one buffer per column slot.

    The allocation-free decode path's backing store: a morsel worker asks
    for ``scratch(column, capacity)`` and gets the same buffer back on
    every subsequent morsel (grown monotonically to the largest request),
    so steady-state streaming decodes allocate nothing.  One arena serves
    one worker thread; only :meth:`trim` may be called from another
    thread (the pool's eviction hook), so the buffer map itself is
    lock-protected — a trimmed-away buffer still borrowed by its worker
    stays valid (NumPy refcounting) and is simply re-allocated on the
    next request.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._map_lock = threading.Lock()

    def scratch(self, key: str, elements: int, dtype=np.int64) -> np.ndarray:
        """A reusable ``dtype`` buffer of at least ``elements`` for ``key``."""
        if elements < 0:
            raise ValueError(f"elements must be non-negative, got {elements}")
        dtype = np.dtype(dtype)
        with self._map_lock:
            buf = self._buffers.get(key)
            if buf is None or buf.size < elements or buf.dtype != dtype:
                buf = np.empty(max(elements, 1), dtype=dtype)
                self._buffers[key] = buf
            return buf

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held across every scratch buffer."""
        with self._map_lock:
            return sum(b.nbytes for b in self._buffers.values())

    def trim(self, max_bytes: int = 0) -> int:
        """Release scratch until at most ``max_bytes`` remain resident.

        The idle-release hook for long-running servers (per-worker arenas
        otherwise pin their peak scratch forever).  Largest buffers go
        first; returns the number of bytes released.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        released = 0
        with self._map_lock:
            if max_bytes == 0:
                released = sum(b.nbytes for b in self._buffers.values())
                self._buffers.clear()
                return released
            resident = sum(b.nbytes for b in self._buffers.values())
            by_size = sorted(
                self._buffers, key=lambda k: self._buffers[k].nbytes, reverse=True
            )
            for key in by_size:
                if resident <= max_bytes:
                    break
                nbytes = self._buffers.pop(key).nbytes
                resident -= nbytes
                released += nbytes
        return released

    def clear(self) -> None:
        self.trim(0)


def trim_tile_chunks(
    values: np.ndarray, chunk_lens: np.ndarray, keep_lens: np.ndarray
) -> np.ndarray:
    """Keep the first ``keep_lens[i]`` elements of each concatenated chunk.

    ``values`` is the concatenation of per-tile decoded chunks of
    ``chunk_lens[i]`` elements (block-padded); the survivors are each
    tile's logical elements, with the final tile's padding dropped.
    """
    chunk_lens = np.asarray(chunk_lens, dtype=np.int64)
    keep_lens = np.asarray(keep_lens, dtype=np.int64)
    if int(chunk_lens.sum()) != values.size:
        raise ValueError("chunk lengths do not cover the decoded values")
    if np.array_equal(chunk_lens, keep_lens):
        return values  # nothing to trim (whole-tile chunks, full last tile)
    within = ragged_arange(chunk_lens)
    return values[within < np.repeat(keep_lens, chunk_lens)]


class TileCodec(ColumnCodec):
    """A codec with the two tile properties of Section 3.

    Tiles are groups of ``d_blocks`` format blocks; a tile is decoded
    entirely in shared memory by one thread block, optionally inline with
    query execution.

    **Empty-column contract:** an empty column encodes to zero tiles
    (``num_tiles == 0``), decodes back to an empty array of the original
    dtype, yields empty ``tile_segments``, and ``decode_tile`` /
    ``decode_tiles`` / ``decode_range`` raise :class:`IndexError` for any
    requested tile — iterating ``range(num_tiles(enc))`` therefore
    round-trips every column, including the empty one.
    """

    #: Elements per format block (128 for *FOR/DFOR, 512 for RFOR).
    block_elements: ClassVar[int]

    def tile_elements(self, enc: EncodedColumn) -> int:
        """Logical elements one thread block decodes (D blocks' worth)."""
        return self.block_elements * self.d_blocks(enc)

    def d_blocks(self, enc: EncodedColumn) -> int:
        """Blocks processed per thread block (the paper's D, default 4)."""
        return int(enc.meta.get("d_blocks", 4))

    def num_tiles(self, enc: EncodedColumn) -> int:
        """Number of tiles covering the column."""
        per_tile = self.tile_elements(enc)
        return -(-enc.count // per_tile)

    def check_tile_index(self, enc: EncodedColumn, tile_idx: int) -> None:
        """Raise :class:`IndexError` unless ``0 <= tile_idx < num_tiles``.

        The shared bounds check of the tile contract: every codec raises
        the same error for out-of-range tiles, and an empty column
        (zero tiles) rejects *every* index instead of crashing somewhere
        deeper in the decoder.
        """
        n_tiles = self.num_tiles(enc)
        if not 0 <= tile_idx < n_tiles:
            raise IndexError(
                f"tile {tile_idx} out of range for column with {n_tiles} tiles"
            )

    def _validate_tile_indices(
        self, enc: EncodedColumn, tile_indices: np.ndarray
    ) -> np.ndarray:
        """Normalize and bounds-check a batch of tile indices."""
        tiles = np.atleast_1d(np.asarray(tile_indices, dtype=np.int64))
        if tiles.ndim != 1:
            raise ValueError("tile_indices must be one-dimensional")
        if tiles.size:
            n_tiles = self.num_tiles(enc)
            lo, hi = int(tiles.min()), int(tiles.max())
            if lo < 0 or hi >= n_tiles:
                bad = lo if lo < 0 else hi
                raise IndexError(
                    f"tile {bad} out of range for column with {n_tiles} tiles"
                )
        return tiles

    # -- integrity ----------------------------------------------------------

    def attach_tile_checksums(self, enc: EncodedColumn, values: np.ndarray) -> None:
        """Compute the per-tile CRC32 table for ``enc`` at encode time.

        Stores ``tile_crcs`` (uint32, one entry per decode tile) and
        ``column_crc`` in ``enc.meta`` over the *logical* values in
        canonical form (:func:`crc32_values` basis), so any decode path
        can verify against them.  No-op when checksums are disabled.
        """
        if not checksums_enabled():
            return
        v = np.ascontiguousarray(np.asarray(values), dtype="<i8")
        n_tiles = self.num_tiles(enc)
        per_tile = self.tile_elements(enc)
        crcs = np.empty(n_tiles, dtype=np.uint32)
        column_crc = 0
        for t in range(n_tiles):
            chunk = v[t * per_tile : (t + 1) * per_tile]
            crcs[t] = zlib.crc32(chunk)
            column_crc = zlib.crc32(chunk, column_crc)
        enc.meta["tile_crcs"] = crcs
        enc.meta["column_crc"] = int(column_crc)

    def validate_for_decode(self, enc: EncodedColumn) -> None:
        """Strict metadata validation before any unpack (cached per column).

        Runs :func:`repro.formats.validate.validate_decode_safety` once
        per encoded column (tracked with a runtime ``_validated`` mark
        that is never serialized); ``always`` verify mode re-validates on
        every decode.
        """
        if verify_mode() != "always" and enc.meta.get("_validated"):
            return
        from repro.formats.validate import validate_decode_safety

        validate_decode_safety(enc, enc.column_name)
        enc.meta["_validated"] = True

    def verify_decoded_tiles(
        self, enc: EncodedColumn, tile_indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Check decoded tile chunks against the per-tile CRC32 table.

        ``values`` holds the tiles' *logical* values concatenated in
        ``tile_indices`` order (any integer dtype).  In ``lazy`` mode each
        tile is verified the first time it is decoded (a runtime
        ``_crc_seen`` bitmap, reset whenever the payload mutates); in
        ``always`` mode every decode re-verifies.  Columns without a
        checksum table pass through (checksums are optional).
        """
        if verify_mode() == "off":
            return
        crcs = enc.meta.get("tile_crcs")
        if crcs is None:
            return
        tiles = np.atleast_1d(np.asarray(tile_indices, dtype=np.int64))
        if tiles.size == 0:
            return
        column = enc.column_name
        n_tiles = self.num_tiles(enc)
        crcs = np.asarray(crcs)
        if crcs.size != n_tiles:
            from repro.formats.validate import CorruptTileError

            raise CorruptTileError(
                column, -1,
                f"checksum table has {crcs.size} entries for {n_tiles} tiles",
            )
        seen = None
        if verify_mode() == "lazy":
            seen = enc.meta.get("_crc_seen")
            if seen is None:
                seen = np.zeros(n_tiles, dtype=bool)
                enc.meta["_crc_seen"] = seen
            if bool(seen[tiles].all()):
                return
        v = np.ascontiguousarray(np.asarray(values), dtype="<i8")
        per_tile = self.tile_elements(enc)
        count = enc.count
        # Full-column fast path: a whole-column decode (the scan case)
        # verifies with ONE CRC pass over the buffer instead of a
        # per-tile Python loop; the loop below only runs to localize the
        # failing tile when the single pass disagrees.
        column_crc = enc.meta.get("column_crc")
        if (
            column_crc is not None
            and tiles.size == n_tiles
            and v.size == count
            and bool(np.array_equal(tiles, np.arange(n_tiles)))
        ):
            if zlib.crc32(v) == int(column_crc):
                if seen is not None:
                    seen[:] = True
                return
        pos = 0
        for t in tiles.tolist():
            length = min((t + 1) * per_tile, count) - t * per_tile
            chunk = v[pos : pos + length]
            pos += length
            if seen is not None and seen[t]:
                continue
            if zlib.crc32(chunk) != int(crcs[t]):
                from repro.formats.validate import CorruptTileError

                raise CorruptTileError(column, int(t), "tile checksum mismatch (CRC32)")
            if seen is not None:
                seen[t] = True

    @abc.abstractmethod
    def decode_tile(self, enc: EncodedColumn, tile_idx: int) -> np.ndarray:
        """Decode one tile's values (the device-function equivalent).

        The last tile may be shorter than :meth:`tile_elements`.
        """

    def decode_tiles(self, enc: EncodedColumn, tile_indices: np.ndarray) -> np.ndarray:
        """Decode a batch of tiles and concatenate their values.

        The batched counterpart of :meth:`decode_tile` — one grid launch
        over many thread blocks rather than one block at a time.  Tiles
        are decoded in the order given; indices may repeat.  The base
        implementation loops; the GPU-* codecs override it with a single
        vectorized pass over the whole batch.

        Args:
            enc: the compressed column.
            tile_indices: tile numbers to decode, each in
                ``[0, num_tiles)``.  An empty batch decodes to an empty
                array.

        Returns:
            The tiles' values concatenated, in the column's dtype.
        """
        tiles = self._validate_tile_indices(enc, tile_indices)
        if tiles.size == 0:
            return np.zeros(0, dtype=enc.dtype)
        return np.concatenate([self.decode_tile(enc, int(t)) for t in tiles])

    def decode_range(
        self, enc: EncodedColumn, first_tile: int, last_tile: int
    ) -> np.ndarray:
        """Decode the contiguous tile range ``[first_tile, last_tile)``.

        Args:
            enc: the compressed column.
            first_tile: first tile to decode (inclusive).
            last_tile: one past the last tile to decode; must satisfy
                ``0 <= first_tile <= last_tile <= num_tiles``.

        Returns:
            The range's values concatenated, in the column's dtype.
        """
        n_tiles = self.num_tiles(enc)
        if not 0 <= first_tile <= last_tile <= n_tiles:
            raise IndexError(
                f"tile range [{first_tile}, {last_tile}) out of range for "
                f"column with {n_tiles} tiles"
            )
        return self.decode_tiles(enc, np.arange(first_tile, last_tile))

    def decode_tiles_into(
        self, enc: EncodedColumn, tile_indices: np.ndarray, out: np.ndarray
    ) -> int:
        """Decode a batch of tiles into a caller-provided scratch buffer.

        The allocation-free counterpart of :meth:`decode_tiles`, built for
        the streaming executor's per-worker :class:`DecodeArena`: values
        land in ``out`` (always as ``int64``, the engine's working dtype)
        and the codec allocates no output of its own.  ``out`` must be a
        1-D contiguous int64 buffer with capacity for the *padded* batch,
        ``tile_indices.size * tile_elements(enc)`` — vectorized decoders
        write whole block-padded tiles before compacting in place.

        Args:
            enc: the compressed column.
            tile_indices: tile numbers to decode, each in ``[0, num_tiles)``.
            out: scratch buffer (see :func:`require_out_buffer`).

        Returns:
            Number of logical values written; ``out[:written]`` holds the
            tiles' values concatenated in the order given.
        """
        tiles = self._validate_tile_indices(enc, tile_indices)
        require_out_buffer(out, tiles.size * self.tile_elements(enc))
        if tiles.size == 0:
            return 0
        values = self.decode_tiles(enc, tiles)
        out[: values.size] = values
        return int(values.size)

    def decode_range_into(
        self, enc: EncodedColumn, first_tile: int, last_tile: int, out: np.ndarray
    ) -> int:
        """Decode tiles ``[first_tile, last_tile)`` into ``out``.

        Range counterpart of :meth:`decode_tiles_into`, with the same
        buffer contract; returns the number of values written.
        """
        n_tiles = self.num_tiles(enc)
        if not 0 <= first_tile <= last_tile <= n_tiles:
            raise IndexError(
                f"tile range [{first_tile}, {last_tile}) out of range for "
                f"column with {n_tiles} tiles"
            )
        return self.decode_tiles_into(
            enc, np.arange(first_tile, last_tile), out
        )

    def decode_filter_tiles_into(
        self,
        enc: EncodedColumn,
        tile_indices: np.ndarray,
        predicate,
        out: np.ndarray,
        mask: np.ndarray,
    ) -> int:
        """Fused decode+filter: unpack tiles and evaluate one predicate.

        Writes the tiles' values into ``out`` and the predicate's row
        mask into ``mask`` (same compaction, same return value as
        :meth:`decode_tiles_into`).  ``predicate`` is any object with a
        ``row_mask(values)`` method — the engine's single-column
        predicate IR; when it also exposes ``as_interval()`` the codec
        overrides evaluate the test *during* unpack, in the shifted
        (reference-relative) domain where the format allows, and may
        skip unpacking blocks whose header bounds already fail.

        **Contract:** ``out[i]`` is only meaningful where
        ``mask[i]`` is True — skipped blocks leave unspecified
        (zero-filled) values — and checksum verification only covers
        fully-materialized decodes, so engines route columns that carry
        checksum tables through the plain decode path unless
        verification is off.  This base implementation fully decodes and
        then evaluates ``row_mask``, making it the oracle the fused
        overrides are tested against.
        """
        tiles = self._validate_tile_indices(enc, tile_indices)
        needed = tiles.size * self.tile_elements(enc)
        require_out_buffer(out, needed)
        require_mask_buffer(mask, needed)
        if tiles.size == 0:
            return 0
        written = self.decode_tiles_into(enc, tiles, out)
        mask[:written] = predicate.row_mask(out[:written])
        return written

    def bounds_elements(self, enc: EncodedColumn) -> int:
        """Bounds granularity: one entry per decode tile."""
        return self.tile_elements(enc)

    def tile_bounds(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        """Per-decode-tile value bounds (see :meth:`ColumnCodec.tile_bounds`).

        The base implementation serves encode-time exact bounds cached in
        ``enc.meta`` (``tile_mins`` / ``tile_maxs``) when present, and
        otherwise falls back to one batched decode — exact, but paying
        the decode cost the metadata-derived overrides avoid.
        """
        mins = enc.meta.get("tile_mins")
        maxs = enc.meta.get("tile_maxs")
        if mins is not None and maxs is not None:
            return (
                np.asarray(mins, dtype=np.int64),
                np.asarray(maxs, dtype=np.int64),
            )
        n_tiles = self.num_tiles(enc)
        if n_tiles == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        values = self.decode_range(enc, 0, n_tiles).astype(np.int64)
        return exact_tile_bounds(values, self.tile_elements(enc))

    @abc.abstractmethod
    def tile_segments(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        """Compressed byte segments each tile reads from global memory.

        Returns:
            ``(starts, lengths)`` arrays, one entry per tile, covering
            every physical byte a tile's thread block loads (data blocks,
            block starts, per-tile metadata).
        """

    @abc.abstractmethod
    def kernel_resources(self, enc: EncodedColumn) -> KernelResources:
        """Resource footprint of the tile decode device function."""
