"""Versioned framed container + hardened decode for encoded columns.

The serialization in :mod:`repro.formats.io` trusts ``.npz`` framing; this
module defines the *hardened* wire format the serving path assumes when
compressed bytes cross a trust boundary (disk, network, a buffer pool that
outlives the encoder):

``RTLC`` magic | container version | codec version | header length |
JSON header (format id, logical count, dtype, scheme metadata, section
table) | section payloads back to back.

Every section (each physical array and each array-valued metadata entry)
carries its dtype, shape, byte length, and CRC32 in the header, so a
truncated, bit-flipped, or mislabelled container is rejected at load with
a structured :class:`~repro.formats.validate.CorruptTileError` instead of
decoding into garbage.  :func:`checked_decode` is the matching decode
entry point: strict metadata validation, a guarded decode, a decoded
length check, and a whole-column CRC comparison — the "never silently
wrong" contract the fuzz suite pins for every registry codec.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib

import numpy as np

from repro.formats.base import (
    EncodedColumn,
    TileCodec,
    corruption_guard,
    crc32_values,
    set_checksums,
    verify_mode,
)
from repro.formats.registry import get_codec
from repro.formats.validate import CorruptTileError, validate_decode_safety

#: Leading magic of every framed container ("Repro Tile Lightweight Container").
MAGIC = b"RTLC"
#: Version of the framing itself (magic/header/section layout).
CONTAINER_VERSION = 1
#: Version of the codec physical layouts the payload was written with.
CODEC_VERSION = 1

_PREAMBLE = struct.Struct("<4sHHI")  # magic, container ver, codec ver, header len


def encode_with_checksums(
    codec_name: str,
    values: np.ndarray,
    column: str | None = None,
    **codec_kwargs,
) -> EncodedColumn:
    """Encode ``values`` and attach the container's integrity metadata.

    The one-stop hardened encode: the named codec compresses the column,
    tile codecs attach their per-tile CRC32 table (done inside
    ``encode`` itself), and every codec gains a whole-column ``column_crc``
    plus the codec version and, when given, the logical column name used
    in corruption reports.
    """
    codec = get_codec(codec_name, **codec_kwargs)
    values = np.asarray(values)
    # The hardened encode always attaches checksums, whatever the
    # process-wide default (plain ``encode`` honours that default).
    prev = set_checksums(True)
    try:
        enc = codec.encode(values)
    finally:
        set_checksums(prev)
    if column is not None:
        enc.meta["column"] = column
    enc.meta["codec_version"] = CODEC_VERSION
    if "column_crc" not in enc.meta:
        enc.meta["column_crc"] = crc32_values(values)
    return enc


def checked_decode(enc: EncodedColumn, column: str | None = None) -> np.ndarray:
    """Decode ``enc`` with the full corruption contract.

    Guarantees one of exactly two outcomes: the column's bit-identical
    logical values, or :class:`CorruptTileError`.  Wrong values can only
    slip through if corruption leaves every per-tile CRC *and* the
    whole-column CRC intact — vanishingly unlikely for CRC32 bit flips —
    and raw numpy faults (IndexError, shape mismatches, overflow) are
    converted to structured reports by the corruption guard.
    """
    if column is None:
        column = enc.column_name
    try:
        codec = get_codec(enc.codec)
    except KeyError as exc:
        raise CorruptTileError(column, -1, f"unknown format id {enc.codec!r}") from exc

    if isinstance(codec, TileCodec):
        codec.validate_for_decode(enc)
    else:
        validate_decode_safety(enc, column)
    with corruption_guard(column):
        values = codec.decode(enc)
    if values.shape != (enc.count,):
        raise CorruptTileError(
            column, -1, f"decoded {values.size} values, expected {enc.count}"
        )
    column_crc = enc.meta.get("column_crc")
    if column_crc is not None and verify_mode() != "off":
        if crc32_values(values) != int(column_crc):
            raise CorruptTileError(column, -1, "column checksum mismatch (CRC32)")
    return values


def _sections(enc: EncodedColumn) -> list[tuple[str, str, np.ndarray]]:
    """Every framed section: (kind, name, array) for arrays and ndarray meta."""
    out = [("array", name, arr) for name, arr in enc.arrays.items()]
    for key, value in enc.meta.items():
        if isinstance(value, np.ndarray) and not key.startswith("_"):
            out.append(("meta", key, value))
    return out


def dumps(enc: EncodedColumn) -> bytes:
    """Serialize ``enc`` into the framed container format."""
    sections = []
    payloads = []
    for kind, name, arr in _sections(enc):
        raw = np.ascontiguousarray(arr)
        payload = raw.tobytes()
        sections.append(
            {
                "kind": kind,
                "name": name,
                "dtype": raw.dtype.str,
                "shape": list(raw.shape),
                "nbytes": len(payload),
                "crc32": zlib.crc32(payload),
            }
        )
        payloads.append(payload)
    json_meta = {
        k: v
        for k, v in enc.meta.items()
        if not isinstance(v, np.ndarray) and not k.startswith("_")
    }
    header = json.dumps(
        {
            "codec": enc.codec,
            "count": enc.count,
            "dtype": np.dtype(enc.dtype).str,
            "meta": json_meta,
            "sections": sections,
        }
    ).encode("utf-8")
    return b"".join(
        [
            _PREAMBLE.pack(MAGIC, CONTAINER_VERSION, CODEC_VERSION, len(header)),
            header,
            *payloads,
        ]
    )


def loads(buf: bytes, column: str | None = None) -> EncodedColumn:
    """Parse a framed container, verifying framing and per-section CRCs.

    Raises:
        CorruptTileError: bad magic, unsupported versions, truncated
            header or payload, section length/CRC mismatch, or an
            unparseable header.
    """
    buf = bytes(buf)
    name = column or "<unnamed>"
    if len(buf) < _PREAMBLE.size:
        raise CorruptTileError(name, -1, "container shorter than the preamble")
    magic, container_ver, codec_ver, header_len = _PREAMBLE.unpack_from(buf)
    if magic != MAGIC:
        raise CorruptTileError(name, -1, f"bad magic {magic!r}")
    if container_ver > CONTAINER_VERSION:
        raise CorruptTileError(
            name, -1, f"container version {container_ver} not supported"
        )
    if codec_ver > CODEC_VERSION:
        raise CorruptTileError(name, -1, f"codec version {codec_ver} not supported")
    header_end = _PREAMBLE.size + header_len
    if header_end > len(buf):
        raise CorruptTileError(name, -1, "truncated container header")
    try:
        header = json.loads(buf[_PREAMBLE.size : header_end].decode("utf-8"))
        sections = header["sections"]
        count = int(header["count"])
        dtype = np.dtype(header["dtype"])
        meta = dict(header["meta"])
        codec = str(header["codec"])
        declared = sum(int(s["nbytes"]) for s in sections)
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise CorruptTileError(
            name, -1, f"unreadable container header: {type(exc).__name__}: {exc}"
        ) from exc
    if column is None:
        name = str(meta.get("column", name))
    if declared != len(buf) - header_end:
        raise CorruptTileError(
            name,
            -1,
            f"section table declares {declared} payload bytes, "
            f"container holds {len(buf) - header_end}",
        )

    arrays: dict[str, np.ndarray] = {}
    offset = header_end
    for section in sections:
        nbytes = int(section["nbytes"])
        payload = buf[offset : offset + nbytes]
        offset += nbytes
        if zlib.crc32(payload) != int(section["crc32"]):
            raise CorruptTileError(
                name, -1, f"section {section['name']!r} checksum mismatch (CRC32)"
            )
        try:
            arr = np.frombuffer(payload, dtype=np.dtype(section["dtype"]))
            arr = arr.reshape(tuple(int(d) for d in section["shape"])).copy()
        except (ValueError, TypeError) as exc:
            raise CorruptTileError(
                name,
                -1,
                f"section {section['name']!r} does not match its declared "
                f"dtype/shape: {exc}",
            ) from exc
        if section["kind"] == "meta":
            meta[str(section["name"])] = arr
        else:
            arrays[str(section["name"])] = arr
    return EncodedColumn(
        codec=codec, count=count, arrays=arrays, meta=meta, dtype=dtype
    )


def save_container(enc: EncodedColumn, path: str | os.PathLike | io.IOBase) -> None:
    """Write the framed container to ``path`` (or a binary file object)."""
    blob = dumps(enc)
    if hasattr(path, "write"):
        path.write(blob)
    else:
        with open(path, "wb") as fh:
            fh.write(blob)


def load_container(
    path: str | os.PathLike | io.IOBase, column: str | None = None
) -> EncodedColumn:
    """Read a framed container written by :func:`save_container`."""
    if hasattr(path, "read"):
        blob = path.read()
    else:
        with open(path, "rb") as fh:
            blob = fh.read()
    return loads(blob, column=column)
