"""Codec registry: look up compression schemes by name.

The experiment harnesses, the planner, and the hybrid GPU-* chooser all
refer to codecs by their string names; this module is the single place
that maps names to implementations.
"""

from __future__ import annotations

from repro.formats.base import ColumnCodec, TileCodec
from repro.formats.delta import Delta
from repro.formats.dictionary import Dict
from repro.formats.gpubp import GpuBp
from repro.formats.gpudfor import GpuDFor
from repro.formats.gpufor import GpuFor
from repro.formats.gpurfor import GpuRFor
from repro.formats.nsf import Nsf
from repro.formats.nsv import Nsv
from repro.formats.pfor import Pfor
from repro.formats.simple8b import Simple8b
from repro.formats.rle import Rle
from repro.formats.simdbp128 import GpuSimdBp128
from repro.formats.vbyte import GpuVByte

_CODECS: dict[str, type[ColumnCodec]] = {
    cls.name: cls
    for cls in (
        GpuFor,
        GpuDFor,
        GpuRFor,
        GpuBp,
        GpuSimdBp128,
        GpuVByte,
        Nsf,
        Nsv,
        Pfor,
        Rle,
        Simple8b,
        Delta,
        Dict,
    )
}


def codec_names() -> list[str]:
    """All registered codec names, sorted."""
    return sorted(_CODECS)


def get_codec(name: str, **kwargs) -> ColumnCodec:
    """Instantiate the codec registered under ``name``.

    Args:
        name: a registry name such as ``"gpu-for"``.
        **kwargs: forwarded to the codec constructor (e.g. ``d_blocks``).

    Raises:
        KeyError: if no codec is registered under ``name``.
    """
    try:
        cls = _CODECS[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {', '.join(codec_names())}"
        ) from None
    return cls(**kwargs)


def is_tile_codec(name: str) -> bool:
    """Whether the named codec satisfies the Section 3 tile properties."""
    return issubclass(_CODECS[name], TileCodec)
