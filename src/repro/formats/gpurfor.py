"""GPU-RFOR: run-length encoding + FOR + bit-packing (paper Section 6).

The column is partitioned into **blocks of 512 logical integers** and RLE
is applied to each block independently, producing a values array and a
run-lengths array per block.  Both arrays are FOR + miniblock-bit-packed
(the ragged generalization of the GPU-FOR block format) and stored as two
separate streams; the run count of each block is extra per-block metadata.

Because every block's runs and lengths decode independently, one thread
block can load both compressed blocks into shared memory, bit-unpack them,
and expand the runs with two scatters and two block-wide prefix sums
(the four steps of Fang et al. [18]) — a single global-memory pass.

GPU-RFOR needs twice the shared memory and registers of GPU-DFOR (two
input streams), which the kernel resources below reflect.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import (
    CascadePass,
    EncodedColumn,
    KernelResources,
    TileCodec,
    ragged_arange,
    require_mask_buffer,
    require_out_buffer,
    trim_tile_chunks,
)
from repro.formats.ragged import (
    RaggedPacked,
    pack_ragged,
    unpack_ragged,
    unpack_ragged_blocks,
)

#: Logical values per RFOR block (Section 6).
RFOR_BLOCK = 512


def run_length_encode(values: np.ndarray, block: int = RFOR_BLOCK):
    """Split ``values`` into runs that never cross block boundaries.

    Returns:
        ``(run_values, run_lengths, runs_per_block)`` covering the input
        exactly; ``values.size`` must be a multiple of ``block``.
    """
    values = np.asarray(values, dtype=np.int64)
    n = values.size
    if n % block:
        raise ValueError(f"run_length_encode needs a multiple of {block} values")
    if n == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(values[1:], values[:-1], out=is_start[1:])
    is_start[::block] = True
    starts = np.flatnonzero(is_start)
    run_values = values[starts]
    run_lengths = np.diff(np.append(starts, n))
    runs_per_block = np.bincount(starts // block, minlength=n // block)
    return run_values, run_lengths, runs_per_block


class GpuRFor(TileCodec):
    """The paper's GPU-RFOR scheme (Section 6)."""

    name = "gpu-rfor"
    block_elements = RFOR_BLOCK

    def __init__(self, d_blocks: int = 1):
        if d_blocks < 1:
            raise ValueError(f"d_blocks must be >= 1, got {d_blocks}")
        self._d_blocks = d_blocks

    # -- ColumnCodec --------------------------------------------------------

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        n = v.size
        if n:
            pad = (-n) % RFOR_BLOCK
            if pad:
                # Padding with the last value merely extends the final run.
                v = np.concatenate([v, np.full(pad, v[-1], dtype=np.int64)])
        run_values, run_lengths, runs_per_block = run_length_encode(v)
        if runs_per_block.size:
            vals_packed = pack_ragged(run_values, runs_per_block)
            lens_packed = pack_ragged(run_lengths, runs_per_block)
        else:
            vals_packed = pack_ragged(run_values, runs_per_block)
            lens_packed = pack_ragged(run_lengths, runs_per_block)
        header = np.array([n, RFOR_BLOCK], dtype=np.uint32)
        enc = EncodedColumn(
            codec=self.name,
            count=n,
            arrays={
                "header": header,
                "run_counts": runs_per_block.astype(np.uint32),
                "values_starts": vals_packed.block_starts,
                "values_data": vals_packed.data,
                "lengths_starts": lens_packed.block_starts,
                "lengths_data": lens_packed.data,
            },
            meta={
                "d_blocks": self._d_blocks,
                "avg_run_length": float(n / max(1, run_values.size)),
            },
            dtype=values.dtype,
        )
        self.attach_tile_checksums(enc, v[:n])
        return enc

    def _check_run_sum(
        self, enc: EncodedColumn, run_lengths: np.ndarray, n_blocks: int, tile_id: int
    ) -> None:
        """Reject corrupt run lengths *before* expansion allocates output.

        Each block's run lengths must sum to exactly ``RFOR_BLOCK``; a
        flipped bit in the packed lengths stream would otherwise make
        ``np.repeat`` allocate an arbitrarily large (or misaligned)
        expansion.
        """
        expected = n_blocks * RFOR_BLOCK
        total = int(run_lengths.sum()) if run_lengths.size else 0
        if total != expected or (run_lengths.size and int(run_lengths.min()) < 1):
            from repro.formats.validate import CorruptTileError

            raise CorruptTileError(
                enc.column_name, tile_id,
                f"run lengths sum to {total}, expected {expected}",
            )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        if enc.count == 0:
            return np.zeros(0, dtype=enc.dtype)
        self.validate_for_decode(enc)
        n_blocks = self._num_blocks(enc)
        run_values, run_lengths = self._decode_runs(enc, 0, n_blocks)
        self._check_run_sum(enc, run_lengths, n_blocks, -1)
        out = np.repeat(run_values, run_lengths)
        vals = out[: enc.count]
        self.verify_decoded_tiles(enc, np.arange(self.num_tiles(enc)), vals)
        return vals.astype(enc.dtype)

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        """Eight kernel passes (Section 9.2): FOR+BitPack for both streams,
        then the four RLE expansion steps of Fang et al."""
        n_runs = int(enc.arrays["run_counts"].astype(np.int64).sum())
        runs_bytes = n_runs * 4
        decoded_bytes = enc.count * 4
        n_blocks = self._num_blocks(enc)
        vstarts, vlens = self._stream_segments(enc, "values")
        lstarts, llens = self._stream_segments(enc, "lengths")
        passes = []
        for stream, (starts, lengths) in (
            ("values", (vstarts, vlens)),
            ("lengths", (lstarts, llens)),
        ):
            passes.append(
                CascadePass(
                    name=f"unpack-{stream}",
                    read_bytes=0,
                    write_bytes=runs_bytes,
                    compute_ops=n_runs * 7,
                    read_segments=(starts, lengths),
                )
            )
            passes.append(
                CascadePass(
                    name=f"add-reference-{stream}",
                    read_bytes=runs_bytes,
                    write_bytes=runs_bytes,
                    compute_ops=n_runs * 2,
                    gathers=(n_blocks, 4),
                )
            )
        passes.extend(
            [
                CascadePass(
                    name="scan-lengths",
                    read_bytes=2 * runs_bytes,
                    write_bytes=runs_bytes,
                    compute_ops=n_runs * 4,
                ),
                CascadePass(
                    name="scatter-flags",
                    read_bytes=runs_bytes,
                    write_bytes=decoded_bytes,
                    compute_ops=n_runs * 2,
                    scatters=(n_runs, 4, decoded_bytes),
                ),
                CascadePass(
                    name="scan-flags",
                    read_bytes=2 * decoded_bytes,
                    write_bytes=decoded_bytes,
                    compute_ops=enc.count * 4,
                ),
                CascadePass(
                    name="gather-values",
                    read_bytes=decoded_bytes,
                    write_bytes=decoded_bytes,
                    compute_ops=enc.count * 2,
                    gathers=(n_runs, 4, runs_bytes),
                ),
            ]
        )
        return passes

    # -- TileCodec ----------------------------------------------------------

    def decode_tile(self, enc: EncodedColumn, tile_idx: int) -> np.ndarray:
        self.check_tile_index(enc, tile_idx)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        n_blocks = self._num_blocks(enc)
        first = tile_idx * d
        last = min(first + d, n_blocks)
        run_values, run_lengths = self._decode_runs(enc, first, last)
        self._check_run_sum(enc, run_lengths, last - first, tile_idx)
        # The device function's expansion: Fang et al.'s four block-wide
        # steps (scan, scatter, max-scan, gather) in shared memory.
        from repro.engine.primitives import block_rle_expand

        out = block_rle_expand(run_values, run_lengths)
        end = min((first + d) * RFOR_BLOCK, enc.count) - first * RFOR_BLOCK
        out = out[:end]
        self.verify_decoded_tiles(enc, np.array([tile_idx]), out)
        return out.astype(enc.dtype)

    def decode_tiles(self, enc: EncodedColumn, tile_indices: np.ndarray) -> np.ndarray:
        tiles = self._validate_tile_indices(enc, tile_indices)
        if tiles.size == 0:
            return np.zeros(0, dtype=enc.dtype)
        self.validate_for_decode(enc)
        d = self.d_blocks(enc)
        n_blocks = self._num_blocks(enc)
        first = tiles * d
        nb = np.minimum(first + d, n_blocks) - first
        blocks = np.repeat(first, nb) + ragged_arange(nb)
        counts = enc.arrays["run_counts"]
        run_values, _ = unpack_ragged_blocks(
            RaggedPacked(
                data=enc.arrays["values_data"],
                block_starts=enc.arrays["values_starts"],
                counts=counts,
            ),
            blocks,
        )
        run_lengths, _ = unpack_ragged_blocks(
            RaggedPacked(
                data=enc.arrays["lengths_data"],
                block_starts=enc.arrays["lengths_starts"],
                counts=counts,
            ),
            blocks,
        )
        # Runs never cross block boundaries and each block's lengths sum
        # to exactly RFOR_BLOCK, so one repeat expands the whole batch.
        self._check_run_sum(enc, run_lengths, int(nb.sum()), int(tiles[0]))
        expanded = np.repeat(run_values, run_lengths)
        keep = (
            np.minimum((tiles + 1) * d * RFOR_BLOCK, enc.count)
            - tiles * d * RFOR_BLOCK
        )
        vals = trim_tile_chunks(expanded, nb * RFOR_BLOCK, keep)
        self.verify_decoded_tiles(enc, tiles, vals)
        return vals.astype(enc.dtype, copy=False)

    def decode_tiles_into(
        self, enc: EncodedColumn, tile_indices: np.ndarray, out: np.ndarray
    ) -> int:
        # RLE expansion's np.repeat has no out-parameter, so the run
        # streams and the expanded runs stay transient; only the trimmed
        # logical values are copied into the caller's scratch.  The
        # transients are run-sized (tiny for run-heavy columns), so the
        # arena still bounds the dominant decoded footprint.
        tiles = self._validate_tile_indices(enc, tile_indices)
        d = self.d_blocks(enc)
        require_out_buffer(out, tiles.size * d * RFOR_BLOCK)
        if tiles.size == 0:
            return 0
        values = self.decode_tiles(enc, tiles)
        out[: values.size] = values
        return int(values.size)

    def decode_filter_tiles_into(
        self,
        enc: EncodedColumn,
        tile_indices: np.ndarray,
        predicate,
        out: np.ndarray,
        mask: np.ndarray,
    ) -> int:
        """Fused decode+filter for GPU-RFOR: evaluate on runs, not rows.

        The predicate is applied to the *run values* before expansion —
        ``n_runs`` comparisons instead of one per logical row — and the
        run mask expands with the same ``np.repeat`` as the values.  Any
        predicate shape works (runs are plain value-domain integers), and
        values are fully materialized so checksum coverage is preserved.
        """
        tiles = self._validate_tile_indices(enc, tile_indices)
        d = self.d_blocks(enc)
        require_out_buffer(out, tiles.size * d * RFOR_BLOCK)
        require_mask_buffer(mask, tiles.size * d * RFOR_BLOCK)
        if tiles.size == 0:
            return 0
        self.validate_for_decode(enc)
        n_blocks = self._num_blocks(enc)
        first = tiles * d
        nb = np.minimum(first + d, n_blocks) - first
        blocks = np.repeat(first, nb) + ragged_arange(nb)
        counts = enc.arrays["run_counts"]
        run_values, _ = unpack_ragged_blocks(
            RaggedPacked(
                data=enc.arrays["values_data"],
                block_starts=enc.arrays["values_starts"],
                counts=counts,
            ),
            blocks,
        )
        run_lengths, _ = unpack_ragged_blocks(
            RaggedPacked(
                data=enc.arrays["lengths_data"],
                block_starts=enc.arrays["lengths_starts"],
                counts=counts,
            ),
            blocks,
        )
        self._check_run_sum(enc, run_lengths, int(nb.sum()), int(tiles[0]))
        run_mask = predicate.row_mask(run_values)
        expanded = np.repeat(run_values, run_lengths)
        expanded_mask = np.repeat(run_mask, run_lengths)
        keep = (
            np.minimum((tiles + 1) * d * RFOR_BLOCK, enc.count)
            - tiles * d * RFOR_BLOCK
        )
        vals = trim_tile_chunks(expanded, nb * RFOR_BLOCK, keep)
        kept_mask = trim_tile_chunks(expanded_mask, nb * RFOR_BLOCK, keep)
        self.verify_decoded_tiles(enc, tiles, vals)
        out[: vals.size] = vals
        mask[: vals.size] = kept_mask
        return int(vals.size)

    def tile_bounds(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        """Zero-decode bounds from the run-values stream's metadata.

        Run lengths never change a block's value set, so only the values
        stream matters: its ragged-FOR reference is the exact minimum of
        the block's run values (= the block minimum), and ``reference +
        2**widest_miniblock - 1`` bounds every run value from the stored
        bitwidth bytes alone.
        """
        counts = enc.arrays["run_counts"].astype(np.int64)
        n_blocks = counts.size
        if n_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        from repro.formats.gpufor import MINIBLOCK

        data = enc.arrays["values_data"]
        bstarts = enc.arrays["values_starts"].astype(np.int64)[:-1]
        references = data[bstarts].view(np.int32).astype(np.int64)

        # Walk the bitwidth bytes exactly as unpack_ragged_blocks does,
        # but stop there: no payload words are touched.
        padded_counts = np.maximum(-(-counts // MINIBLOCK), 1) * MINIBLOCK
        minis_per_block = padded_counts // MINIBLOCK
        mini_offsets = np.zeros(n_blocks + 1, dtype=np.int64)
        np.cumsum(minis_per_block, out=mini_offsets[1:])
        mini_block_of = np.repeat(np.arange(n_blocks), minis_per_block)
        within = np.arange(int(mini_offsets[-1])) - mini_offsets[mini_block_of]
        bw_word_idx = bstarts[mini_block_of] + 1 + within // 4
        bits = ((data[bw_word_idx] >> ((within % 4) * 8)) & 0xFF).astype(np.int64)
        widest = np.maximum.reduceat(bits, mini_offsets[:-1])

        block_max = references + (np.int64(1) << widest) - 1
        edges = np.arange(0, n_blocks, self.d_blocks(enc), dtype=np.int64)
        return (
            np.minimum.reduceat(references, edges),
            np.maximum.reduceat(block_max, edges),
        )

    def tile_segments(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        d = self.d_blocks(enc)
        vstarts_arr = enc.arrays["values_starts"].astype(np.int64)
        lstarts_arr = enc.arrays["lengths_starts"].astype(np.int64)
        n_blocks = vstarts_arr.size - 1
        tile_first = np.arange(0, n_blocks, d, dtype=np.int64)
        tile_last = np.minimum(tile_first + d, n_blocks)

        # Lay the four physical arrays out back to back so segments from
        # different arrays never alias.
        v_bytes = int(vstarts_arr[-1]) * 4
        l_base = v_bytes
        l_bytes = int(lstarts_arr[-1]) * 4
        meta_base = l_base + l_bytes

        segs = [
            (vstarts_arr[tile_first] * 4, (vstarts_arr[tile_last] - vstarts_arr[tile_first]) * 4),
            (l_base + lstarts_arr[tile_first] * 4, (lstarts_arr[tile_last] - lstarts_arr[tile_first]) * 4),
            # block starts (both streams) + run counts, read per tile.
            (meta_base + tile_first * 4, (tile_last - tile_first + 1) * 4),
            (meta_base + (n_blocks + 1) * 4 + tile_first * 4, (tile_last - tile_first + 1) * 4),
            (meta_base + 2 * (n_blocks + 1) * 4 + tile_first * 4, (tile_last - tile_first) * 4),
        ]
        return (
            np.concatenate([s for s, _ in segs]),
            np.concatenate([l for _, l in segs]),
        )

    def kernel_resources(self, enc: EncodedColumn) -> KernelResources:
        d = self.d_blocks(enc)
        # Two compressed streams staged plus the 512-entry decode buffer:
        # twice GPU-DFOR's footprint (Section 6).
        return KernelResources(
            registers_per_thread=18 + 4 * d,
            shared_mem_per_block=d * RFOR_BLOCK * 4 * 2 + 512,
            compute_ops_per_element=25.0,
            tile_prologue_ops=8000.0,
            shared_bytes_per_element=48.0,
        )

    # -- helpers ------------------------------------------------------------

    def _decode_runs(
        self, enc: EncodedColumn, first: int, last: int
    ) -> tuple[np.ndarray, np.ndarray]:
        counts = enc.arrays["run_counts"]
        vals_packed = RaggedPacked(
            data=enc.arrays["values_data"],
            block_starts=enc.arrays["values_starts"],
            counts=counts,
        )
        lens_packed = RaggedPacked(
            data=enc.arrays["lengths_data"],
            block_starts=enc.arrays["lengths_starts"],
            counts=counts,
        )
        run_values, _ = unpack_ragged(vals_packed, first, last)
        run_lengths, _ = unpack_ragged(lens_packed, first, last)
        return run_values, run_lengths

    def _num_blocks(self, enc: EncodedColumn) -> int:
        return enc.arrays["run_counts"].size

    def _stream_segments(self, enc: EncodedColumn, stream: str):
        starts_arr = enc.arrays[f"{stream}_starts"].astype(np.int64)
        n_blocks = starts_arr.size - 1
        first = np.arange(n_blocks, dtype=np.int64)
        return starts_arr[first] * 4, (starts_arr[first + 1] - starts_arr[first]) * 4
