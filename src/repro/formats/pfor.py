"""PFOR: patched frame-of-reference (Zukowski et al., paper Section 2.2).

PFOR packs a block of integers with a bitwidth ``b`` chosen so the
*majority* fit, and stores the rest — the exceptions — uncompressed at the
end of the block with their positions.  Against GPU-FOR's miniblocks this
is the other classic answer to skew: GPU-FOR pays a wider miniblock,
PFOR pays a patch list.

Layout per 128-value block: [reference][bitwidth | exception_count << 8]
[packed 128 x b bits][exception positions (1 byte each, padded to words)]
[exception values (4 bytes each)].  Exceptions' packed slots hold zero
and are overwritten ("patched") after unpacking.

Both encode and decode are vectorized across blocks (grouped by chosen
bitwidth), matching the throughput of the other block codecs.
"""

from __future__ import annotations

import numpy as np

from repro.formats import bitio
from repro.formats.base import CascadePass, ColumnCodec, EncodedColumn
from repro.formats.gpufor import bit_length

#: Values per block.
PFOR_BLOCK = 128
#: Encoded cost of one exception: 1 position byte + 4 value bytes.
_EXCEPTION_BITS = 5 * 8


def _best_bitwidth(diffs: np.ndarray) -> tuple[int, int]:
    """Pick the bitwidth minimizing packed bits + patch bytes for a block.

    Returns:
        ``(bits, exception_count)``.
    """
    bits_arr, exc_arr = _best_bitwidths(diffs.reshape(1, -1))
    return int(bits_arr[0]), int(exc_arr[0])


def _best_bitwidths(blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized bitwidth choice for ``(n_blocks, PFOR_BLOCK)`` diffs."""
    widths = bit_length(blocks)  # (nb, 128)
    max_w = int(widths.max(initial=0))
    candidates = np.arange(max_w + 1)
    # exceptions at width b = how many values need more than b bits.
    exc = (widths[:, :, None] > candidates).sum(axis=1)  # (nb, n_candidates)
    costs = blocks.shape[1] * candidates + exc * _EXCEPTION_BITS
    best = np.argmin(costs, axis=1)
    return best.astype(np.int64), exc[np.arange(blocks.shape[0]), best].astype(np.int64)


class Pfor(ColumnCodec):
    """Patched FOR with per-block exceptions."""

    name = "pfor"

    def encode(self, values: np.ndarray) -> EncodedColumn:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("encode expects a 1-D integer array")
        v = values.astype(np.int64)
        n = v.size
        pad = (-n) % PFOR_BLOCK
        if pad and n:
            v = np.concatenate([v, np.full(pad, v[-1], dtype=np.int64)])
        n_blocks = v.size // PFOR_BLOCK
        if n_blocks == 0:
            return EncodedColumn(
                codec=self.name,
                count=n,
                arrays={
                    "data": np.zeros(0, dtype=np.uint32),
                    "block_starts": np.zeros(1, dtype=np.uint32),
                },
                dtype=values.dtype,
            )

        blocks = v.reshape(n_blocks, PFOR_BLOCK)
        references = blocks.min(axis=1)
        if not -(2**31) <= int(references.min()) <= int(references.max()) < 2**31:
            # One 32-bit reference word per block; wider would wrap on astype.
            raise ValueError("block references do not fit in int32")
        diffs = blocks - references[:, None]
        if int(diffs.max()) >= 2**32:
            raise ValueError("per-block value range exceeds 32 bits")

        bits, exc_counts = _best_bitwidths(diffs)
        thresholds = np.left_shift(np.int64(1), bits)[:, None]
        exc_mask = diffs >= thresholds
        packed_vals = np.where(exc_mask, 0, diffs)

        payload_words = 4 * bits  # 128 values at b bits = 4b words
        pos_words = -(-exc_counts // 4)
        block_words = 2 + payload_words + pos_words + exc_counts
        block_starts = np.zeros(n_blocks + 1, dtype=np.int64)
        np.cumsum(block_words, out=block_starts[1:])
        if int(block_starts[-1]) >= 2**32:
            raise ValueError("column too large: block start offsets exceed 32 bits")

        data = np.zeros(int(block_starts[-1]), dtype=np.uint32)
        data[block_starts[:-1]] = references.astype(np.int32).view(np.uint32)
        data[block_starts[:-1] + 1] = (bits | (exc_counts << 8)).astype(np.uint32)

        # Packed payloads, grouped by bitwidth.
        for b in np.unique(bits):
            if b == 0:
                continue
            sel = np.flatnonzero(bits == b)
            packed = bitio.pack_bits(
                packed_vals[sel].reshape(-1).astype(np.uint64), int(b)
            ).reshape(sel.size, int(4 * b))
            dest = (block_starts[sel] + 2)[:, None] + np.arange(int(4 * b))
            data[dest.reshape(-1)] = packed.reshape(-1)

        # Exception positions (bytes) and values (words), per block.
        total_exc = int(exc_counts.sum())
        if total_exc:
            block_of_exc, pos_in_block = np.nonzero(exc_mask)
            exc_vals = diffs[block_of_exc, pos_in_block]
            within = _within_group_index(exc_counts)

            pos_area_start = block_starts[:-1] + 2 + payload_words  # words
            pos_byte_index = pos_area_start[block_of_exc] * 4 + within
            data_bytes = data.view(np.uint8)
            data_bytes[pos_byte_index] = pos_in_block.astype(np.uint8)

            val_area_start = pos_area_start + pos_words
            data[val_area_start[block_of_exc] + within] = exc_vals.astype(np.uint32)

        return EncodedColumn(
            codec=self.name,
            count=n,
            arrays={
                "data": data,
                "block_starts": block_starts.astype(np.uint32),
            },
            dtype=values.dtype,
        )

    def decode(self, enc: EncodedColumn) -> np.ndarray:
        starts = enc.arrays["block_starts"].astype(np.int64)
        data = enc.arrays["data"]
        n_blocks = starts.size - 1
        if n_blocks == 0:
            return np.zeros(0, dtype=enc.dtype)

        references = data[starts[:-1]].view(np.int32).astype(np.int64)
        meta = data[starts[:-1] + 1].astype(np.int64)
        bits = meta & 0xFF
        exc_counts = meta >> 8
        payload_words = 4 * bits
        pos_words = -(-exc_counts // 4)

        out = np.empty((n_blocks, PFOR_BLOCK), dtype=np.int64)
        for b in np.unique(bits):
            sel = np.flatnonzero(bits == b)
            if b == 0:
                out[sel] = 0
                continue
            src = (starts[:-1][sel] + 2)[:, None] + np.arange(int(4 * b))
            words = data[src.reshape(-1)]
            vals = bitio.unpack_bits(words, sel.size * PFOR_BLOCK, int(b))
            out[sel] = vals.reshape(sel.size, PFOR_BLOCK).astype(np.int64)

        total_exc = int(exc_counts.sum())
        if total_exc:
            block_of_exc = np.repeat(np.arange(n_blocks), exc_counts)
            within = _within_group_index(exc_counts)
            pos_area_start = starts[:-1] + 2 + payload_words
            data_bytes = data.view(np.uint8)
            positions = data_bytes[
                pos_area_start[block_of_exc] * 4 + within
            ].astype(np.int64)
            val_area_start = pos_area_start + pos_words
            exc_vals = data[val_area_start[block_of_exc] + within].astype(np.int64)
            out[block_of_exc, positions] = exc_vals  # the patch step

        decoded = (out + references[:, None]).reshape(-1)
        return decoded[: enc.count].astype(enc.dtype)

    def bounds_elements(self, enc: EncodedColumn) -> int:
        """PFOR is not tile-decodable; its pruning unit is one block."""
        return PFOR_BLOCK

    def tile_bounds(self, enc: EncodedColumn) -> tuple[np.ndarray, np.ndarray]:
        """Per-block bounds from headers plus the stored exception values.

        The reference is the exact block minimum; the maximum is bounded
        by ``2**bits - 1`` for packed slots and by the patch list —
        whose values sit uncompressed in the block — for exceptions.
        Reading the patch list is a metadata scan proportional to the
        exception count, never a full unpack.
        """
        starts = enc.arrays["block_starts"].astype(np.int64)
        data = enc.arrays["data"]
        n_blocks = starts.size - 1
        if n_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        references = data[starts[:-1]].view(np.int32).astype(np.int64)
        meta = data[starts[:-1] + 1].astype(np.int64)
        bits = meta & 0xFF
        exc_counts = meta >> 8
        max_diff = (np.int64(1) << bits) - 1
        total_exc = int(exc_counts.sum())
        if total_exc:
            block_of_exc = np.repeat(np.arange(n_blocks), exc_counts)
            within = _within_group_index(exc_counts)
            val_area_start = starts[:-1] + 2 + 4 * bits + -(-exc_counts // 4)
            exc_vals = data[val_area_start[block_of_exc] + within].astype(np.int64)
            exc_max = np.zeros(n_blocks, dtype=np.int64)
            np.maximum.at(exc_max, block_of_exc, exc_vals)
            max_diff = np.maximum(max_diff, exc_max)
        return references, references + max_diff

    def cascade_passes(self, enc: EncodedColumn) -> list[CascadePass]:
        n = enc.count
        return [
            CascadePass(
                name="unpack-bits",
                read_bytes=enc.nbytes,
                write_bytes=n * 4,
                compute_ops=n * 7,
            ),
            # Patching is a scattered read-modify-write of the exceptions.
            CascadePass(
                name="patch-exceptions",
                read_bytes=n * 4,
                write_bytes=n * 4,
                compute_ops=n * 2,
                scatters=(max(1, n // 16), 4, n * 4),
            ),
        ]


def _within_group_index(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
