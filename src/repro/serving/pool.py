"""ColumnPool: a byte-budgeted manager of device-resident column images.

The paper's execution model (§3, §7) keeps *compressed* columns resident
in GPU global memory and decodes tiles inline; engines additionally keep
*decoded* images around as device-side caches.  Both kinds compete for
the same physical capacity — ``GPUSpec.global_capacity_bytes`` — which
nothing in the repo enforced before this module: stores loaded columns of
any size and engines grew their decoded caches without bound.

:class:`ColumnPool` makes residency explicit.  Every byte on the device
is a :class:`Resident` with a kind, a pin count, and a reconstruction
cost, and admission under pressure evicts with a cost-aware policy:

* **Reconstructible images go first.**  A decoded image can always be
  re-materialized from its compressed resident, so decoded (and metadata)
  residents are evicted before any compressed column is dropped to host.
* **Within a class, keep what is expensive and hot.**  The victim is the
  resident with the lowest ``reconstruct_cost_ms / (1 + age)`` — the
  greedy-dual score: cheap-to-rebuild and long-unused images leave before
  expensive, recently-used ones.  For decoded images the cost comes from
  the gpusim timing model (:func:`estimate_decode_cost_ms`); for
  compressed images it is the PCIe transfer to re-stage them from host.

Admission never over-commits: a payload larger than the whole budget (or
unable to fit because the remainder is pinned) raises
:class:`PoolAdmissionError` instead of silently succeeding.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.gpusim.executor import GPUDevice
from repro.serving.metrics import MetricsRegistry

#: Resident kinds, in eviction-preference order (reconstructible first).
#: ``scratch`` entries are accounting-only mirrors of working memory held
#: elsewhere (e.g. streaming decode arenas); evicting one fires its
#: ``release`` callback so the mirrored bytes are actually freed.
#: ``partial`` entries are semantic-cache partial aggregates — always
#: recomputable by re-running the covering morsels, so they evict with
#: the other reconstructible kinds under the same greedy-dual score.
KINDS = ("meta", "decoded", "compressed", "scratch", "partial")
#: Kinds that can be rebuilt from another resident (or the host copy)
#: without losing data — always evicted before compressed images.
RECONSTRUCTIBLE_KINDS = frozenset({"meta", "decoded", "scratch", "partial"})


class PoolAdmissionError(RuntimeError):
    """A payload cannot be admitted within the pool's byte budget."""


@dataclass
class Resident:
    """One image occupying device memory."""

    key: str
    nbytes: int
    kind: str
    #: The device-side object itself (decoded array, encoded column, ...).
    #: ``None`` for accounting-only residents whose bytes live elsewhere.
    payload: Any = None
    #: Simulated ms to rebuild this image if evicted (decode or PCIe cost).
    reconstruct_cost_ms: float = 0.0
    pin_count: int = 0
    last_used: int = 0
    #: Called (outside the eviction loop, errors swallowed) when the
    #: resident is evicted for space; accounting-only residents use it to
    #: free the external memory they mirror.  Not fired by explicit
    #: ``invalidate``/``clear`` — the owner initiated those itself.
    release: Callable[[], Any] | None = field(default=None, repr=False, compare=False)

    @property
    def reconstructible(self) -> bool:
        return self.kind in RECONSTRUCTIBLE_KINDS

    def keep_score(self, now: int) -> float:
        """Greedy-dual keep value: rebuild cost discounted by staleness."""
        return self.reconstruct_cost_ms / (1 + max(0, now - self.last_used))


@dataclass
class EvictionRecord:
    """Ledger entry for one eviction (exposed for tests/debugging)."""

    key: str
    kind: str
    nbytes: int
    keep_score: float = field(repr=False, default=0.0)


class ColumnPool:
    """Byte-budgeted pool of compressed and decoded column images."""

    def __init__(
        self,
        budget_bytes: int,
        metrics: MetricsRegistry | None = None,
        metric_labels: dict | None = None,
    ):
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Labels stamped on every metric this pool writes (e.g.
        #: ``{"shard": 2}``), so several pools — one per shard — share a
        #: registry without clobbering each other's gauges.  ``None``
        #: keeps the unlabeled keys existing scrapes read.
        self.metric_labels = dict(metric_labels) if metric_labels else None
        self._lock = threading.RLock()
        self._residents: dict[str, Resident] = {}
        self._tick = 0
        self.eviction_log: list[EvictionRecord] = []
        self._gauge("pool_budget_bytes", budget_bytes)
        self._publish()

    def _inc(self, name: str, amount: int = 1) -> None:
        self.metrics.inc(name, amount, labels=self.metric_labels)

    def _gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value, labels=self.metric_labels)

    # -- introspection -----------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(r.nbytes for r in self._residents.values())

    @property
    def resident_keys(self) -> list[str]:
        with self._lock:
            return list(self._residents)

    def lookup(self, key: str) -> Resident | None:
        """Peek at a resident without touching recency or counters."""
        with self._lock:
            return self._residents.get(key)

    def __contains__(self, key: str) -> bool:
        return self.lookup(key) is not None

    # -- the serving API ---------------------------------------------------

    def get(self, key: str) -> Resident | None:
        """Fetch a resident, counting a hit/miss and refreshing recency."""
        with self._lock:
            self._tick += 1
            resident = self._residents.get(key)
            if resident is None:
                self._inc("pool_misses")
                return None
            resident.last_used = self._tick
            self._inc("pool_hits")
            return resident

    def admit(
        self,
        key: str,
        nbytes: int,
        kind: str,
        payload: Any = None,
        reconstruct_cost_ms: float = 0.0,
        pin: bool = False,
        release: Callable[[], Any] | None = None,
    ) -> Resident:
        """Make room for and register one image; returns its resident.

        Re-admitting an existing key refreshes its payload/cost in place.
        Raises :class:`PoolAdmissionError` when the image can never fit
        (larger than the whole budget) or when pinned residents hold too
        much of it.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if kind not in KINDS:
            raise ValueError(f"unknown kind {kind!r}; expected one of {KINDS}")
        with self._lock:
            self._tick += 1
            existing = self._residents.get(key)
            if existing is not None:
                if existing.nbytes != nbytes:
                    self._residents.pop(key)
                    self._publish()
                else:
                    existing.payload = payload
                    existing.reconstruct_cost_ms = reconstruct_cost_ms
                    existing.last_used = self._tick
                    existing.release = release
                    if pin:
                        existing.pin_count += 1
                    return existing
            if nbytes > self.budget_bytes:
                self._inc("pool_rejections")
                raise PoolAdmissionError(
                    f"{key}: {nbytes} bytes exceed the whole device budget "
                    f"of {self.budget_bytes} bytes"
                )
            self._make_room(nbytes, for_key=key)
            resident = Resident(
                key=key,
                nbytes=nbytes,
                kind=kind,
                payload=payload,
                reconstruct_cost_ms=reconstruct_cost_ms,
                pin_count=1 if pin else 0,
                last_used=self._tick,
                release=release,
            )
            self._residents[key] = resident
            self._inc("pool_admissions")
            self._publish()
            return resident

    def pin(self, key: str) -> None:
        """Protect a resident from eviction (counted; unpin to release)."""
        with self._lock:
            resident = self._residents.get(key)
            if resident is None:
                raise KeyError(f"cannot pin non-resident {key!r}")
            resident.pin_count += 1

    def unpin(self, key: str) -> None:
        with self._lock:
            resident = self._residents.get(key)
            if resident is None:
                return  # invalidated while pinned: nothing to release
            if resident.pin_count <= 0:
                raise RuntimeError(f"unbalanced unpin of {key!r}")
            resident.pin_count -= 1

    @contextlib.contextmanager
    def pinned(self, *keys: str) -> Iterator[None]:
        """Pin ``keys`` (those currently resident) for a ``with`` block."""
        held = []
        with self._lock:
            for key in keys:
                if key in self._residents:
                    self.pin(key)
                    held.append(key)
        try:
            yield
        finally:
            for key in held:
                self.unpin(key)

    def invalidate(self, key: str) -> bool:
        """Drop a resident (e.g. its column was re-encoded); True if it was
        resident.  Pinned residents are dropped too — the caller made the
        bytes stale, keeping them would serve wrong data."""
        with self._lock:
            resident = self._residents.pop(key, None)
            if resident is None:
                return False
            self._inc("pool_invalidations")
            self._publish()
            return True

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every resident whose key starts with ``prefix``."""
        with self._lock:
            doomed = [k for k in self._residents if k.startswith(prefix)]
            for key in doomed:
                self.invalidate(key)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._residents.clear()
            self._publish()

    def metrics_snapshot(self) -> dict:
        """The pool's counters and gauges as one dict."""
        return {
            k: v
            for k, v in self.metrics.snapshot().items()
            if k.startswith("pool_")
        }

    # -- eviction ----------------------------------------------------------

    def _make_room(self, nbytes: int, for_key: str) -> None:
        """Evict until ``nbytes`` fit, preferring reconstructible images."""
        free = self.budget_bytes - sum(r.nbytes for r in self._residents.values())
        releases: list[Callable[[], Any]] = []
        while free < nbytes:
            victim = self._pick_victim()
            if victim is None:
                self._inc("pool_rejections")
                raise PoolAdmissionError(
                    f"{for_key}: needs {nbytes} bytes but only {free} are free "
                    f"and every other resident is pinned"
                )
            self._residents.pop(victim.key)
            free += victim.nbytes
            self.eviction_log.append(
                EvictionRecord(
                    victim.key, victim.kind, victim.nbytes,
                    victim.keep_score(self._tick),
                )
            )
            self._inc("pool_evictions")
            self._inc("pool_evicted_bytes", victim.nbytes)
            if victim.release is not None:
                releases.append(victim.release)
        self._publish()
        # Fire release hooks only after the eviction loop settled its
        # accounting: a hook that re-enters the pool (the lock is
        # reentrant) must not race the ``free`` tally above.
        for release in releases:
            try:
                release()
            except Exception:
                self._inc("pool_release_errors")

    def _pick_victim(self) -> Resident | None:
        """Lowest keep-score unpinned resident, reconstructible class first."""
        candidates = [r for r in self._residents.values() if r.pin_count == 0]
        if not candidates:
            return None
        reconstructible = [r for r in candidates if r.reconstructible]
        pool = reconstructible if reconstructible else candidates
        return min(pool, key=lambda r: (r.keep_score(self._tick), r.last_used))

    def _publish(self) -> None:
        resident_bytes = sum(r.nbytes for r in self._residents.values())
        self._gauge("pool_resident_bytes", resident_bytes)
        self._gauge("pool_residents", len(self._residents))
        self.metrics.gauge_max(
            "pool_peak_resident_bytes", resident_bytes, labels=self.metric_labels
        )


def estimate_decode_cost_ms(enc: Any, device: GPUDevice) -> float:
    """Price re-materializing a decoded image, via the gpusim cost model.

    Delegates to the planner's per-codec
    :func:`~repro.core.planner.decode_cost_estimate` hook, so eviction
    scoring and codec-tiering decisions read one shared cost model.
    """
    from repro.core.planner import decode_cost_estimate

    return decode_cost_estimate(enc, device)
