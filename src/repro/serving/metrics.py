"""Metrics surface of the serving layer: counters, gauges, latency series.

Every serving component (the :class:`~repro.serving.pool.ColumnPool`, the
:class:`~repro.serving.scheduler.QueryServer`) records into one shared
:class:`MetricsRegistry`.  The registry is deliberately tiny — named
monotonic counters, last-write-wins gauges, string info labels, and
bounded observation series with percentile queries — exported as one flat
dict so reports, tests and benchmarks all read the same numbers.

All operations are thread-safe: client threads submitting to the server
and the scheduler thread draining it update the same registry.  Series
are bounded ring buffers, so the hot ``observe`` path is O(1) and a
scrape holds the lock only for a bulk array copy — summary statistics
and list conversion happen outside it, so scrapes never stall writers
for longer than a memcpy.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict
from typing import Sequence

import numpy as np


def labeled(name: str, labels: "dict | None" = None) -> str:
    """Prometheus-style metric key: ``name{k=v,...}`` (sorted by label).

    The label set becomes part of the flat key, so labeled and unlabeled
    metrics coexist in one registry and one scrape: a per-shard counter
    ``shard_queue_depth{shard=2}`` never collides with — and never
    changes — an existing unlabeled ``shard_queue_depth``.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default method but works on plain
    lists, so metric consumers need no array conversion.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(values) == 0:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class _Series:
    """Bounded ring buffer of float observations.

    ``observe`` is a single array store plus two integer updates — no
    allocation, no list shifting — and ``ordered_copy`` materializes the
    retained window (oldest first) with one or two slice copies.
    """

    __slots__ = ("buf", "count", "head")

    def __init__(self, capacity: int):
        self.buf = np.empty(capacity, dtype=np.float64)
        #: Total observations ever made (retained window is the tail).
        self.count = 0
        #: Next write position.
        self.head = 0

    def observe(self, value: float) -> None:
        self.buf[self.head] = value
        self.head = (self.head + 1) % self.buf.size
        self.count += 1

    def ordered_copy(self) -> np.ndarray:
        """The retained observations, oldest first, as a fresh array."""
        if self.count < self.buf.size:
            return self.buf[: self.head].copy()
        if self.head == 0:
            return self.buf.copy()
        return np.concatenate([self.buf[self.head :], self.buf[: self.head]])


class MetricsRegistry:
    """Named counters, gauges, info labels, observation series, and
    exponentially-decayed counters (the heat signal codec tiering reads)."""

    def __init__(self, max_series_len: int = 100_000):
        if max_series_len <= 0:
            raise ValueError("max_series_len must be positive")
        self._lock = threading.Lock()
        self._counters: dict[str, int] = defaultdict(int)
        self._gauges: dict[str, float] = {}
        self._infos: dict[str, str] = {}
        self._series: dict[str, _Series] = {}
        #: name -> (decayed value, timestamp of last decay application).
        self._decayed: dict[str, tuple[float, float]] = {}
        self._max_series_len = max_series_len

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, amount: int = 1, labels: dict | None = None) -> None:
        """Add ``amount`` to a monotonic counter (optionally labeled)."""
        with self._lock:
            self._counters[labeled(name, labels)] += amount

    def gauge(self, name: str, value: float, labels: dict | None = None) -> None:
        """Set a gauge to its current value (optionally labeled)."""
        with self._lock:
            self._gauges[labeled(name, labels)] = value

    def gauge_max(
        self, name: str, value: float, labels: dict | None = None
    ) -> None:
        """Raise a high-watermark gauge to ``value`` if it is higher."""
        name = labeled(name, labels)
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def set_info(self, name: str, value: str) -> None:
        """Set a string-valued label (build/version-style metadata,
        e.g. the active kernel backend)."""
        with self._lock:
            self._infos[name] = str(value)

    def observe(
        self, name: str, value: float, labels: dict | None = None
    ) -> None:
        """Append one observation (e.g. a latency) to a series."""
        name = labeled(name, labels)
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(self._max_series_len)
            series.observe(float(value))

    def touch(
        self,
        name: str,
        amount: float = 1.0,
        *,
        at: float,
        half_life: float,
        labels: dict | None = None,
    ) -> float:
        """Add ``amount`` to an exponentially-decayed counter at time ``at``.

        The stored value first decays by ``0.5 ** (dt / half_life)`` for
        the interval since its last touch, then ``amount`` is added — a
        single multiply-add under the lock, O(1) regardless of history,
        so per-column heat scoring never re-walks full series.  ``at`` and
        ``half_life`` share one unit (the serving layer passes simulated
        milliseconds).  Time never runs backwards: an earlier ``at`` is
        clamped to the last-seen timestamp.

        Returns the post-touch decayed value.
        """
        if half_life <= 0.0:
            raise ValueError("half_life must be positive")
        key = labeled(name, labels)
        with self._lock:
            value, last_at = self._decayed.get(key, (0.0, at))
            at = max(at, last_at)
            value = value * 0.5 ** ((at - last_at) / half_life) + amount
            self._decayed[key] = (value, at)
        return value

    # -- reads -------------------------------------------------------------

    def decayed_value(
        self,
        name: str,
        *,
        now: float,
        half_life: float,
        labels: dict | None = None,
    ) -> float:
        """A decayed counter's value projected forward to time ``now``."""
        with self._lock:
            entry = self._decayed.get(labeled(name, labels))
        if entry is None:
            return 0.0
        value, last_at = entry
        if now <= last_at:
            return value
        return value * 0.5 ** ((now - last_at) / half_life)

    def decayed_snapshot(self, *, now: float, half_life: float) -> dict[str, float]:
        """Every decayed counter projected to ``now`` as one flat dict.

        Only the dict items are copied under the lock; the decay math
        (one ``pow`` per key) runs outside it, so a scrape never stalls
        concurrent ``touch`` calls for longer than the copy.
        """
        with self._lock:
            items = list(self._decayed.items())
        out: dict[str, float] = {}
        for key, (value, last_at) in items:
            if now > last_at:
                value = value * 0.5 ** ((now - last_at) / half_life)
            out[key] = value
        return out

    def counter(self, name: str, labels: dict | None = None) -> int:
        with self._lock:
            return self._counters.get(labeled(name, labels), 0)

    def gauge_value(
        self, name: str, default: float = 0.0, labels: dict | None = None
    ) -> float:
        with self._lock:
            return self._gauges.get(labeled(name, labels), default)

    def info_value(self, name: str, default: str = "") -> str:
        with self._lock:
            return self._infos.get(name, default)

    def series(self, name: str, labels: dict | None = None) -> list[float]:
        """The retained observations of one series, oldest first.

        The lock covers only the bulk copy of the ring; the (much
        slower) boxing into a Python list happens outside it, so a
        scrape of a full 100k-entry series never stalls ``observe``.
        """
        with self._lock:
            series = self._series.get(labeled(name, labels))
            values = None if series is None else series.ordered_copy()
        return [] if values is None else values.tolist()

    def series_percentile(
        self, name: str, q: float, labels: dict | None = None
    ) -> float:
        with self._lock:
            series = self._series.get(labeled(name, labels))
            values = None if series is None else series.ordered_copy()
        if values is None:
            return percentile([], q)
        return percentile(values.tolist(), q)

    def snapshot(self) -> dict:
        """Export everything as one flat dict.

        Counters and gauges appear under their own names, info labels as
        strings; each series ``s`` contributes ``s_count``, ``s_mean``,
        ``s_p50``, ``s_p99`` and ``s_max``.  Only the raw copies happen
        under the lock — the per-series statistics are computed after it
        is released.
        """
        with self._lock:
            out: dict = dict(self._counters)
            out.update(self._gauges)
            out.update(self._infos)
            series_copy = {k: s.ordered_copy() for k, s in self._series.items()}
        for name, values in series_copy.items():
            n = int(values.size)
            out[f"{name}_count"] = n
            out[f"{name}_mean"] = float(values.mean()) if n else 0.0
            out[f"{name}_p50"] = (
                float(np.percentile(values, 50.0)) if n else 0.0
            )
            out[f"{name}_p99"] = (
                float(np.percentile(values, 99.0)) if n else 0.0
            )
            out[f"{name}_max"] = float(values.max()) if n else 0.0
        return out


def metrics_rows(snapshot: dict) -> list[dict]:
    """Render a metrics snapshot as report-table rows (sorted by name)."""
    rows = []
    for name in sorted(snapshot):
        value = snapshot[name]
        rows.append(
            {
                "metric": name,
                "value": f"{value:.3f}" if isinstance(value, float) else value,
            }
        )
    return rows
