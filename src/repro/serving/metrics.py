"""Metrics surface of the serving layer: counters, gauges, latency series.

Every serving component (the :class:`~repro.serving.pool.ColumnPool`, the
:class:`~repro.serving.scheduler.QueryServer`) records into one shared
:class:`MetricsRegistry`.  The registry is deliberately tiny — named
monotonic counters, last-write-wins gauges, and bounded observation series
with percentile queries — exported as one flat dict so reports, tests and
benchmarks all read the same numbers.

All operations are thread-safe: client threads submitting to the server
and the scheduler thread draining it update the same registry.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict
from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default method but works on plain
    lists, so metric consumers need no array conversion.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class MetricsRegistry:
    """Named counters, gauges, and observation series."""

    def __init__(self, max_series_len: int = 100_000):
        if max_series_len <= 0:
            raise ValueError("max_series_len must be positive")
        self._lock = threading.Lock()
        self._counters: dict[str, int] = defaultdict(int)
        self._gauges: dict[str, float] = {}
        self._series: dict[str, list[float]] = defaultdict(list)
        self._max_series_len = max_series_len

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to a monotonic counter."""
        with self._lock:
            self._counters[name] += amount

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its current value."""
        with self._lock:
            self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise a high-watermark gauge to ``value`` if it is higher."""
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Append one observation (e.g. a latency) to a series."""
        with self._lock:
            series = self._series[name]
            series.append(float(value))
            if len(series) > self._max_series_len:
                del series[: len(series) - self._max_series_len]

    # -- reads -------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def series(self, name: str) -> list[float]:
        with self._lock:
            return list(self._series.get(name, ()))

    def series_percentile(self, name: str, q: float) -> float:
        return percentile(self.series(name), q)

    def snapshot(self) -> dict:
        """Export everything as one flat dict.

        Counters and gauges appear under their own names; each series
        ``s`` contributes ``s_count``, ``s_mean``, ``s_p50``, ``s_p99``
        and ``s_max``.
        """
        with self._lock:
            out: dict = dict(self._counters)
            out.update(self._gauges)
            series_copy = {k: list(v) for k, v in self._series.items()}
        for name, values in series_copy.items():
            out[f"{name}_count"] = len(values)
            out[f"{name}_mean"] = sum(values) / len(values) if values else 0.0
            out[f"{name}_p50"] = percentile(values, 50.0)
            out[f"{name}_p99"] = percentile(values, 99.0)
            out[f"{name}_max"] = max(values) if values else 0.0
        return out


def metrics_rows(snapshot: dict) -> list[dict]:
    """Render a metrics snapshot as report-table rows (sorted by name)."""
    rows = []
    for name in sorted(snapshot):
        value = snapshot[name]
        rows.append(
            {
                "metric": name,
                "value": f"{value:.3f}" if isinstance(value, float) else value,
            }
        )
    return rows
