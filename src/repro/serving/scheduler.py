"""QueryServer: concurrent admission, batching and backpressure.

The serving layer's front door.  Client threads :meth:`~QueryServer.submit`
SSB queries or point-lookup requests against one shared
:class:`~repro.engine.crystal.CrystalEngine`; a single scheduler drains a
**bounded** queue (a full queue rejects — backpressure instead of
unbounded buffering), groups compatible requests, and executes each group
once:

* identical SSB queries in one drain window ride the same fused fact
  kernel — one execution, every requester gets the result;
* point lookups against the same column coalesce their indices into one
  :func:`~repro.core.random_access.gather`, touching each compressed tile
  at most once per window.

Before a group runs, its columns are placed through the
:class:`~repro.serving.pool.ColumnPool` (charging PCIe transfer on
misses, evicting under pressure) and pinned for the duration, so device
capacity holds even while decoded images come and go.

Time is the simulator's: the server keeps a serving clock advanced by
each group's simulated transfer + kernel milliseconds.  A request's
latency is its simulated queue wait (clock at dispatch minus clock at
admission) plus its group's execution time, and a request whose wait
exceeds its timeout is answered with a ``timeout`` result instead of
being executed.  Latencies, queue depth, and hit/eviction counters all
land in the shared :class:`~repro.serving.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.core.random_access import gather
from repro.engine.crystal import CrystalEngine
from repro.engine.ssb_queries import QUERIES
from repro.gpusim.executor import GPUDevice
from repro.serving.metrics import MetricsRegistry
from repro.serving.pool import ColumnPool, PoolAdmissionError
from repro.ssb.dbgen import SSBDatabase
from repro.ssb.loader import ColumnStore


class ServerSaturated(RuntimeError):
    """The bounded admission queue is full — back off and retry."""


class ServerClosed(RuntimeError):
    """The server no longer accepts requests."""


@dataclass
class ServeRequest:
    """One client request: an SSB query or a point lookup."""

    kind: str  # "query" | "lookup"
    name: str  # SSB query name, or the column a lookup targets
    indices: np.ndarray | None = None
    #: Simulated ms this request will wait in queue before giving up
    #: (``None``: wait forever).
    timeout_ms: float | None = None
    #: Stamped at admission: request id and the serving clock.
    id: int = field(default=-1, compare=False)
    submitted_ms: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("query", "lookup"):
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.kind == "query" and self.name not in QUERIES:
            raise ValueError(f"unknown SSB query {self.name!r}")
        if self.kind == "lookup":
            if self.indices is None:
                raise ValueError("lookup requests need indices")
            self.indices = np.asarray(self.indices, dtype=np.int64)

    @property
    def batch_key(self) -> tuple[str, str]:
        """Requests sharing this key execute as one group."""
        return (self.kind, self.name)


@dataclass
class ServedResult:
    """What a request resolves to."""

    request: ServeRequest
    status: str  # "ok" | "timeout" | "rejected"
    groups: dict[int, int] | None = None
    values: np.ndarray | None = None
    queue_wait_ms: float = 0.0
    execute_ms: float = 0.0
    #: Requests that shared this execution (1 = ran alone).
    batch_size: int = 1
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency_ms(self) -> float:
        """Simulated end-to-end latency: queue wait + execution."""
        return self.queue_wait_ms + self.execute_ms


@dataclass
class _Ticket:
    request: ServeRequest
    future: Future


class QueryServer:
    """Admits, batches and executes requests over one shared engine."""

    def __init__(
        self,
        db: SSBDatabase,
        store: ColumnStore,
        device: GPUDevice | None = None,
        pool: ColumnPool | None = None,
        budget_bytes: int | None = None,
        max_queue: int = 64,
        batch_window: int = 8,
        default_timeout_ms: float | None = None,
        metrics: MetricsRegistry | None = None,
        streaming: bool = False,
        stream_workers: int = 4,
        morsel_tiles: int | None = None,
    ):
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if batch_window <= 0:
            raise ValueError(f"batch_window must be positive, got {batch_window}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.device = device if device is not None else GPUDevice()
        if pool is None:
            pool = ColumnPool(
                budget_bytes
                if budget_bytes is not None
                else self.device.spec.global_capacity_bytes,
                metrics=self.metrics,
            )
        self.pool = pool
        self.store = store
        self.engine = CrystalEngine(
            db,
            store,
            self.device,
            pool=pool,
            streaming=streaming,
            stream_workers=stream_workers,
            morsel_tiles=morsel_tiles,
        )
        # Morsel timings and the peak decoded-bytes gauge land next to
        # the serving latency series.
        self.engine.metrics = self.metrics
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.default_timeout_ms = default_timeout_ms

        self._state_lock = threading.Lock()
        self._not_empty = threading.Condition(self._state_lock)
        self._space_freed = threading.Condition(self._state_lock)
        self._queue: deque[_Ticket] = deque()
        self._engine_lock = threading.Lock()
        self._clock_ms = 0.0
        self._next_id = 0
        self._closed = False
        self._thread: threading.Thread | None = None

    # -- admission ---------------------------------------------------------

    @property
    def clock_ms(self) -> float:
        """The serving clock: simulated ms of work dispatched so far."""
        with self._state_lock:
            return self._clock_ms

    @property
    def queue_depth(self) -> int:
        with self._state_lock:
            return len(self._queue)

    def submit(self, request: ServeRequest, block_s: float | None = None) -> Future:
        """Admit one request; resolves to a :class:`ServedResult`.

        A full queue raises :class:`ServerSaturated` immediately, or
        after really waiting up to ``block_s`` seconds for space — the
        backpressure contract: the caller, not the server, buffers.
        """
        with self._state_lock:
            if self._closed:
                raise ServerClosed("server is closed")
            if len(self._queue) >= self.max_queue and block_s is not None:
                deadline = time.monotonic() + block_s
                while len(self._queue) >= self.max_queue and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._space_freed.wait(remaining):
                        break
                if self._closed:
                    raise ServerClosed("server closed while waiting for space")
            if len(self._queue) >= self.max_queue:
                self.metrics.inc("server_rejected")
                raise ServerSaturated(
                    f"queue full ({self.max_queue} requests waiting)"
                )
            if request.timeout_ms is None:
                request.timeout_ms = self.default_timeout_ms
            request.id = self._next_id
            self._next_id += 1
            request.submitted_ms = self._clock_ms
            ticket = _Ticket(request, Future())
            self._queue.append(ticket)
            self.metrics.inc("server_admitted")
            self.metrics.gauge("server_queue_depth", len(self._queue))
            self.metrics.gauge_max("server_peak_queue_depth", len(self._queue))
            self._not_empty.notify()
            return ticket.future

    def query(self, name: str, timeout_ms: float | None = None,
              block_s: float | None = None) -> Future:
        """Submit one SSB query by name."""
        return self.submit(ServeRequest("query", name, timeout_ms=timeout_ms),
                           block_s=block_s)

    def lookup(self, column: str, indices: np.ndarray,
               timeout_ms: float | None = None,
               block_s: float | None = None) -> Future:
        """Submit one point lookup over a fact column."""
        return self.submit(
            ServeRequest("lookup", column, indices=indices, timeout_ms=timeout_ms),
            block_s=block_s,
        )

    def serve(self, requests: list[ServeRequest]) -> list[ServedResult]:
        """Synchronously push a workload through and collect every result.

        Works with or without a running scheduler thread: without one the
        caller's thread drains the queue whenever backpressure trips, and
        completely at the end.
        """
        futures: list[Future] = []
        for request in requests:
            while True:
                try:
                    futures.append(self.submit(request))
                    break
                except ServerSaturated:
                    if self._thread is None:
                        self.drain()
                    else:
                        time.sleep(0.001)
        if self._thread is None:
            self.drain()
        return [f.result() for f in futures]

    # -- scheduling --------------------------------------------------------

    def start(self) -> None:
        """Run the scheduler in a background thread."""
        with self._state_lock:
            if self._closed:
                raise ServerClosed("server is closed")
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._serve_loop, name="query-server", daemon=True
            )
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop accepting requests; optionally finish the queued ones."""
        with self._state_lock:
            self._closed = True
            self._not_empty.notify_all()
            self._space_freed.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join()
        if drain:
            self.drain()
        else:
            while True:
                batch = self._take_batch()
                if not batch:
                    break
                for ticket in batch:
                    ticket.future.set_result(
                        ServedResult(ticket.request, "rejected",
                                     error="server stopped")
                    )

    def drain(self) -> int:
        """Process everything currently queued on the calling thread."""
        processed = 0
        while True:
            batch = self._take_batch()
            if not batch:
                return processed
            self._process(batch)
            processed += len(batch)

    def _serve_loop(self) -> None:
        while True:
            with self._state_lock:
                while not self._queue and not self._closed:
                    self._not_empty.wait(0.05)
                if self._closed and not self._queue:
                    return
                stop_after = self._closed
            batch = self._take_batch()
            if batch:
                self._process(batch)
            if stop_after and not self.queue_depth:
                return

    def _take_batch(self) -> list[_Ticket]:
        with self._state_lock:
            batch = []
            while self._queue and len(batch) < self.batch_window:
                batch.append(self._queue.popleft())
            if batch:
                self.metrics.gauge("server_queue_depth", len(self._queue))
                self._space_freed.notify_all()
            return batch

    # -- execution ---------------------------------------------------------

    def _process(self, batch: list[_Ticket]) -> None:
        groups: dict[tuple[str, str], list[_Ticket]] = {}
        for ticket in batch:
            groups.setdefault(ticket.request.batch_key, []).append(ticket)
        for (kind, name), tickets in groups.items():
            with self._state_lock:
                start_ms = self._clock_ms
            live = self._expire(tickets, start_ms)
            if not live:
                continue
            try:
                with self._engine_lock:
                    if kind == "query":
                        execute_ms, payloads = self._run_query_group(name, live)
                    else:
                        execute_ms, payloads = self._run_lookup_group(name, live)
            except PoolAdmissionError as exc:
                for ticket in live:
                    self.metrics.inc("server_pool_rejections")
                    ticket.future.set_result(
                        ServedResult(ticket.request, "rejected", error=str(exc))
                    )
                continue
            with self._state_lock:
                self._clock_ms = start_ms + execute_ms
                self.metrics.gauge("server_clock_ms", self._clock_ms)
            self.metrics.inc("server_batches")
            if len(live) > 1:
                self.metrics.inc("server_batched_requests", len(live) - 1)
            for ticket, payload in zip(live, payloads):
                wait = start_ms - ticket.request.submitted_ms
                result = ServedResult(
                    ticket.request,
                    "ok",
                    queue_wait_ms=wait,
                    execute_ms=execute_ms,
                    batch_size=len(live),
                    **payload,
                )
                self.metrics.inc("server_served")
                self.metrics.observe("latency_ms", result.latency_ms)
                self.metrics.observe("queue_wait_ms", wait)
                self.metrics.observe("execute_ms", execute_ms)
                ticket.future.set_result(result)

    def _expire(self, tickets: list[_Ticket], now_ms: float) -> list[_Ticket]:
        live = []
        for ticket in tickets:
            timeout = ticket.request.timeout_ms
            wait = now_ms - ticket.request.submitted_ms
            if timeout is not None and wait > timeout:
                self.metrics.inc("server_timeouts")
                ticket.future.set_result(
                    ServedResult(ticket.request, "timeout", queue_wait_ms=wait)
                )
            else:
                live.append(ticket)
        return live

    def _place_pinned(self, columns: tuple[str, ...]):
        """Stage a group's columns through the pool and pin them for it."""
        self.store.place_on_device(self.pool, self.device, columns=columns)
        return self.pool.pinned(*(f"compressed/{c}" for c in columns))

    def _run_query_group(
        self, name: str, tickets: list[_Ticket]
    ) -> tuple[float, list[dict]]:
        query = QUERIES[name]
        before = self.device.elapsed_ms
        with self._place_pinned(query.columns):
            result = self.engine.run(query)
        execute_ms = self.device.elapsed_ms - before
        return execute_ms, [{"groups": dict(result.groups)} for _ in tickets]

    def _run_lookup_group(
        self, name: str, tickets: list[_Ticket]
    ) -> tuple[float, list[dict]]:
        col = self.store[name]
        all_indices = np.concatenate([t.request.indices for t in tickets])
        before = self.device.elapsed_ms
        with self._place_pinned((name,)):
            if self.engine.column_inline(name):
                fetched = gather(col.payload, all_indices, self.device).values
            else:
                # Uncompressed: each index pulls one coalesced element.
                with self.device.launch(
                    f"lookup-{name}", grid_blocks=max(1, all_indices.size // 128)
                ) as k:
                    k.read_gather(all_indices.size, 4, col.values.size * 4)
                    k.compute(all_indices.size)
                fetched = np.asarray(col.values)[all_indices]
        execute_ms = self.device.elapsed_ms - before
        payloads = []
        offset = 0
        for ticket in tickets:
            n = ticket.request.indices.size
            payloads.append({"values": fetched[offset : offset + n]})
            offset += n
        return execute_ms, payloads

    def metrics_snapshot(self) -> dict:
        """Server + pool metrics as one flat dict."""
        return self.metrics.snapshot()
