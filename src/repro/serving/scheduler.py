"""QueryServer: concurrent admission, batching and backpressure.

The serving layer's front door.  Client threads :meth:`~QueryServer.submit`
SSB queries or point-lookup requests against one shared
:class:`~repro.engine.crystal.CrystalEngine`; a single scheduler drains a
**bounded** queue (a full queue rejects — backpressure instead of
unbounded buffering), groups compatible requests, and executes each group
once:

* identical SSB queries in one drain window ride the same fused fact
  kernel — one execution, every requester gets the result;
* point lookups against the same column coalesce their indices into one
  :func:`~repro.core.random_access.gather`, touching each compressed tile
  at most once per window.

Before a group runs, its columns are placed through the
:class:`~repro.serving.pool.ColumnPool` (charging PCIe transfer on
misses, evicting under pressure) and pinned for the duration, so device
capacity holds even while decoded images come and go.

Time is the simulator's: the server keeps a serving clock advanced by
each group's simulated transfer + kernel milliseconds.  A request's
latency is its simulated queue wait (clock at dispatch minus clock at
admission) plus its group's execution time, and a request whose wait
exceeds its timeout is answered with a ``timeout`` result instead of
being executed.  Latencies, queue depth, and hit/eviction counters all
land in the shared :class:`~repro.serving.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.core.random_access import gather
from repro.engine.crystal import CrystalEngine, SSBQuery
from repro.engine.ssb_queries import QUERIES
from repro.formats import kernels
from repro.formats.validate import CorruptTileError
from repro.gpusim.executor import GPUDevice
from repro.serving.faults import TransientDecodeError
from repro.serving.metrics import MetricsRegistry
from repro.serving.pool import ColumnPool, PoolAdmissionError
from repro.serving.semcache import DEFAULT_SEMCACHE_BUDGET, SemanticResultCache
from repro.query.compiler import QueryCompiler
from repro.query.model import Query
from repro.serving.sharding import ShardRouter
from repro.serving.tiering import CodecTieringManager, TieringPolicy
from repro.ssb.dbgen import SSBDatabase
from repro.ssb.loader import ColumnStore


class ServerSaturated(RuntimeError):
    """The bounded admission queue is full — back off and retry."""


class ServerClosed(RuntimeError):
    """The server no longer accepts requests."""


@dataclass
class ServeRequest:
    """One client request: an SSB query or a point lookup."""

    kind: str  # "query" | "lookup"
    name: str  # SSB query name, or the column a lookup targets
    indices: np.ndarray | None = None
    #: Simulated ms this request will wait in queue before giving up
    #: (``None``: wait forever).
    timeout_ms: float | None = None
    #: The query object itself — an ad-hoc :class:`SSBQuery` not in the
    #: registry, or resolved from ``name`` at admission.
    query: SSBQuery | None = None
    #: Stamped at admission: request id and the serving clock.
    id: int = field(default=-1, compare=False)
    submitted_ms: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("query", "lookup"):
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.kind == "query":
            if self.query is None:
                if self.name not in QUERIES:
                    raise ValueError(f"unknown SSB query {self.name!r}")
                self.query = QUERIES[self.name]
            else:
                self.name = self.query.name
        if self.kind == "lookup":
            if self.indices is None:
                raise ValueError("lookup requests need indices")
            self.indices = np.asarray(self.indices, dtype=np.int64)

    @property
    def batch_key(self) -> tuple:
        """Requests sharing this key execute as one group.

        Queries group by :meth:`SSBQuery.semantic_key`, not by name: two
        requests whose predicates canonicalize identically (however
        differently they were spelled) coalesce into one execution.
        """
        if self.kind == "query":
            return ("query", self.query.semantic_key())
        return ("lookup", self.name)


@dataclass
class ServedResult:
    """What a request resolves to."""

    request: ServeRequest
    status: str  # "ok" | "timeout" | "rejected" | "error"
    groups: dict[int, int] | None = None
    values: np.ndarray | None = None
    queue_wait_ms: float = 0.0
    execute_ms: float = 0.0
    #: Requests that shared this execution (1 = ran alone).
    batch_size: int = 1
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency_ms(self) -> float:
        """Simulated end-to-end latency: queue wait + execution."""
        return self.queue_wait_ms + self.execute_ms


@dataclass
class _Ticket:
    request: ServeRequest
    future: Future


class QueryServer:
    """Admits, batches and executes requests over one shared engine."""

    def __init__(
        self,
        db: SSBDatabase,
        store: ColumnStore,
        device: GPUDevice | None = None,
        pool: ColumnPool | None = None,
        budget_bytes: int | None = None,
        max_queue: int = 64,
        batch_window: int = 8,
        default_timeout_ms: float | None = None,
        metrics: MetricsRegistry | None = None,
        streaming: bool = False,
        stream_workers: int = 4,
        morsel_tiles: int | None = None,
        max_retries: int = 2,
        retry_backoff_ms: float = 5.0,
        verify_cached: bool = False,
        kernel_backend: str | None = None,
        trim_arenas_when_idle: bool = True,
        semantic_cache: bool = False,
        semcache_budget_bytes: int | None = None,
        num_shards: int = 1,
        interconnect_gbps: float = 50.0,
        replicate_columns: tuple[str, ...] = (),
        tiering: "TieringPolicy | bool | None" = None,
        compiler: QueryCompiler | None = None,
    ):
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if batch_window <= 0:
            raise ValueError(f"batch_window must be positive, got {batch_window}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Multi-GPU mode: a ShardRouter owning ``num_shards`` tile-range
        #: shards replaces the single engine/device/pool.  ``None`` keeps
        #: the classic single-device path byte-for-byte unchanged.
        self.router: ShardRouter | None = None
        self.semcache: SemanticResultCache | None = None
        if num_shards > 1:
            if not streaming:
                raise ValueError(
                    "num_shards > 1 requires streaming=True: shards execute "
                    "tile-span-restricted streaming plans"
                )
            if device is not None or pool is not None:
                raise ValueError(
                    "num_shards > 1 builds its own per-shard devices and "
                    "pools; device/pool cannot be passed"
                )
            if kernel_backend is not None:
                # Backend selection is process-global; resolve it before
                # the shard engines snapshot the active backend name.
                kernels.set_backend(kernel_backend)
            self.router = ShardRouter(
                db,
                store,
                num_shards,
                budget_bytes=budget_bytes,
                metrics=self.metrics,
                stream_workers=stream_workers,
                morsel_tiles=morsel_tiles,
                interconnect_gbps=interconnect_gbps,
                verify_cached=verify_cached,
                semantic_cache=semantic_cache,
                semcache_budget_bytes=semcache_budget_bytes,
                replicate_columns=replicate_columns,
            )
            self.store = store
            # Compatibility views: the router's slowest-shard clock is
            # the serving device, shard 0 stands in for engine/pool
            # introspection (kernel backend, pushdown flags, ...).
            self.device = self.router.sharded
            self.engine = self.router.shards[0].engine
            self.pool = self.router.shards[0].pool
            self.semcache = self.engine.semcache
        else:
            self.device = device if device is not None else GPUDevice()
            if pool is None:
                pool = ColumnPool(
                    budget_bytes
                    if budget_bytes is not None
                    else self.device.spec.global_capacity_bytes,
                    metrics=self.metrics,
                )
            self.pool = pool
            self.store = store
            self.engine = CrystalEngine(
                db,
                store,
                self.device,
                pool=pool,
                streaming=streaming,
                stream_workers=stream_workers,
                morsel_tiles=morsel_tiles,
                kernel_backend=kernel_backend,
            )
            # Morsel timings and the peak decoded-bytes gauge land next to
            # the serving latency series.
            self.engine.metrics = self.metrics
            self.engine.verify_cached = verify_cached
            #: Optional semantic result cache reusing per-tile-span partial
            #: aggregates across overlapping queries (see serving.semcache).
            if semantic_cache:
                if not streaming:
                    raise ValueError(
                        "semantic_cache requires streaming=True: partials are "
                        "cached at morsel granularity"
                    )
                self.semcache = SemanticResultCache(
                    semcache_budget_bytes
                    if semcache_budget_bytes is not None
                    else DEFAULT_SEMCACHE_BUDGET,
                    metrics=self.metrics,
                )
                self.engine.semcache = self.semcache
        #: Workload-adaptive codec tiering: a background maintenance task
        #: that re-encodes columns between hot/warm/cold tiers from the
        #: decayed access counters this server records per group.  Pass
        #: ``True`` for the default policy or a :class:`TieringPolicy`.
        #: Maintenance runs on the scheduler thread's idle ticks (and on
        #: demand via ``tiering.run_once``); swaps publish through
        #: :meth:`_invalidate_column`, so engine caches, semantic-cache
        #: epochs, and every shard observe one consistent epoch.
        self.tiering: CodecTieringManager | None = None
        if tiering:
            policy = tiering if isinstance(tiering, TieringPolicy) else TieringPolicy()
            if self.router is not None:
                engines = tuple(s.engine for s in self.router.shards)
            else:
                engines = (self.engine,)
            self.tiering = CodecTieringManager(
                store=store,
                engines=engines,
                device=self.engine.device,
                metrics=self.metrics,
                policy=policy,
                invalidate=self._invalidate_column,
                clock=lambda: self.clock_ms,
            )
        #: Release streaming decode-arena scratch when the scheduler
        #: thread has seen the queue empty for consecutive waits.
        self.trim_arenas_when_idle = trim_arenas_when_idle
        # The resolved (post-fallback) bit-packing backend, visible to
        # scrapes next to the latency series.
        self.metrics.set_info("kernel_backend", self.engine.kernel_backend)
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.default_timeout_ms = default_timeout_ms
        #: Bounded retries for transient decode failures, with simulated
        #: exponential backoff added to the group's execution time.
        self.max_retries = max_retries
        self.retry_backoff_ms = retry_backoff_ms
        #: Columns whose compressed source failed verification twice
        #: (initial decode and the re-decode-from-source fallback):
        #: requests touching them are answered with a structured error
        #: until :meth:`release_quarantine`.
        self._quarantined: dict[str, str] = {}

        #: Declarative front end: with a :class:`QueryCompiler` attached,
        #: :meth:`query` accepts ad-hoc :class:`~repro.query.model.Query`
        #: specs the registry has never seen.  Compilations cache per
        #: spec object; batching still keys on the *compiled plan's*
        #: canonical semantic key, so two structurally identical specs
        #: compiled separately coalesce into one execution.
        self.compiler = compiler
        self._compile_cache: dict[Query, "object"] = {}
        self._compile_lock = threading.Lock()

        self._state_lock = threading.Lock()
        self._not_empty = threading.Condition(self._state_lock)
        self._space_freed = threading.Condition(self._state_lock)
        self._queue: deque[_Ticket] = deque()
        self._engine_lock = threading.Lock()
        self._clock_ms = 0.0
        self._next_id = 0
        self._closed = False
        self._thread: threading.Thread | None = None

    # -- admission ---------------------------------------------------------

    @property
    def clock_ms(self) -> float:
        """The serving clock: simulated ms of work dispatched so far."""
        with self._state_lock:
            return self._clock_ms

    @property
    def queue_depth(self) -> int:
        with self._state_lock:
            return len(self._queue)

    def submit(self, request: ServeRequest, block_s: float | None = None) -> Future:
        """Admit one request; resolves to a :class:`ServedResult`.

        A full queue raises :class:`ServerSaturated` immediately, or
        after really waiting up to ``block_s`` seconds for space — the
        backpressure contract: the caller, not the server, buffers.
        """
        with self._state_lock:
            if self._closed:
                raise ServerClosed("server is closed")
            if len(self._queue) >= self.max_queue and block_s is not None:
                deadline = time.monotonic() + block_s
                while len(self._queue) >= self.max_queue and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._space_freed.wait(remaining):
                        break
                if self._closed:
                    raise ServerClosed("server closed while waiting for space")
            if len(self._queue) >= self.max_queue:
                self.metrics.inc("server_rejected")
                raise ServerSaturated(
                    f"queue full ({self.max_queue} requests waiting)"
                )
            if request.timeout_ms is None:
                request.timeout_ms = self.default_timeout_ms
            request.id = self._next_id
            self._next_id += 1
            request.submitted_ms = self._clock_ms
            ticket = _Ticket(request, Future())
            self._queue.append(ticket)
            self.metrics.inc("server_admitted")
            self.metrics.gauge("server_queue_depth", len(self._queue))
            self.metrics.gauge_max("server_peak_queue_depth", len(self._queue))
            self._not_empty.notify()
            return ticket.future

    def compile(self, spec: Query) -> SSBQuery:
        """Compile a declarative spec through the attached compiler.

        Compiled plans cache per spec (specs are frozen/hashable), so a
        client resubmitting the same spec object — or an equal one —
        pays compilation once.
        """
        if self.compiler is None:
            raise ValueError(
                "this server has no QueryCompiler attached; pass compiler= "
                "to QueryServer to serve declarative Query specs"
            )
        with self._compile_lock:
            compiled = self._compile_cache.get(spec)
            if compiled is None:
                compiled = self.compiler.compile(spec)
                self._compile_cache[spec] = compiled
        return compiled

    def query(self, name: "str | SSBQuery | Query",
              timeout_ms: float | None = None,
              block_s: float | None = None) -> Future:
        """Submit one query: registry name, plan object, or declarative
        :class:`~repro.query.model.Query` spec (compiled on admission)."""
        if isinstance(name, Query):
            name = self.compile(name)
        if isinstance(name, SSBQuery):
            request = ServeRequest("query", name.name, query=name,
                                   timeout_ms=timeout_ms)
        else:
            request = ServeRequest("query", name, timeout_ms=timeout_ms)
        return self.submit(request, block_s=block_s)

    def lookup(self, column: str, indices: np.ndarray,
               timeout_ms: float | None = None,
               block_s: float | None = None) -> Future:
        """Submit one point lookup over a fact column."""
        return self.submit(
            ServeRequest("lookup", column, indices=indices, timeout_ms=timeout_ms),
            block_s=block_s,
        )

    def serve(self, requests: list[ServeRequest]) -> list[ServedResult]:
        """Synchronously push a workload through and collect every result.

        Works with or without a running scheduler thread: without one the
        caller's thread drains the queue whenever backpressure trips, and
        completely at the end.
        """
        futures: list[Future] = []
        for request in requests:
            while True:
                try:
                    futures.append(self.submit(request))
                    break
                except ServerSaturated:
                    if self._thread is None:
                        self.drain()
                    else:
                        time.sleep(0.001)
        if self._thread is None:
            self.drain()
        return [f.result() for f in futures]

    # -- scheduling --------------------------------------------------------

    def start(self) -> None:
        """Run the scheduler in a background thread."""
        with self._state_lock:
            if self._closed:
                raise ServerClosed("server is closed")
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._serve_loop, name="query-server", daemon=True
            )
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop accepting requests; optionally finish the queued ones."""
        with self._state_lock:
            self._closed = True
            self._not_empty.notify_all()
            self._space_freed.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join()
        if self.tiering is not None:
            self.tiering.stop()
        if drain:
            self.drain()
        else:
            while True:
                batch = self._take_batch()
                if not batch:
                    break
                for ticket in batch:
                    ticket.future.set_result(
                        ServedResult(ticket.request, "rejected",
                                     error="server stopped")
                    )
        if self.router is not None:
            self.router.close()

    def drain(self) -> int:
        """Process everything currently queued on the calling thread."""
        processed = 0
        while True:
            batch = self._take_batch()
            if not batch:
                return processed
            self._process(batch)
            processed += len(batch)

    def _serve_loop(self) -> None:
        idle_waits = 0
        while True:
            with self._state_lock:
                while not self._queue and not self._closed:
                    self._not_empty.wait(0.05)
                    idle_waits += 1
                    if idle_waits == 2 and self.trim_arenas_when_idle:
                        # Two consecutive empty waits: the burst is over.
                        # Release decode-arena scratch exactly once per
                        # idle period (the counter keeps climbing until
                        # work arrives, so longer idling never re-trims).
                        break
                else:
                    idle_waits = 0
                if self._closed and not self._queue:
                    return
                stop_after = self._closed
            if idle_waits == 2 and not self.queue_depth:
                self.trim_idle()
                if self.tiering is not None:
                    self.tiering.maybe_run()
                continue
            batch = self._take_batch()
            if batch:
                self._process(batch)
            if stop_after and not self.queue_depth:
                return

    def trim_idle(self, max_bytes: int = 0) -> int:
        """Release streaming decode-arena scratch down to ``max_bytes``.

        Called by the scheduler thread when the queue has stayed empty,
        and callable directly between workload bursts.  Worker arenas
        grow to the largest column chunk ever decoded; between bursts
        that memory serves nobody.  Returns the bytes released.
        """
        with self._engine_lock:
            if self.router is not None:
                released = self.router.trim_arenas(max_bytes)
            else:
                released = self.engine.trim_stream_arenas(max_bytes)
        if released:
            self.metrics.inc("arena_trim_releases")
            self.metrics.inc("arena_trimmed_bytes", released)
        return released

    def _take_batch(self) -> list[_Ticket]:
        with self._state_lock:
            batch = []
            while self._queue and len(batch) < self.batch_window:
                batch.append(self._queue.popleft())
            if batch:
                self.metrics.gauge("server_queue_depth", len(self._queue))
                self._space_freed.notify_all()
            return batch

    # -- execution ---------------------------------------------------------

    def _process(self, batch: list[_Ticket]) -> None:
        groups: dict[tuple, list[_Ticket]] = {}
        for ticket in batch:
            groups.setdefault(ticket.request.batch_key, []).append(ticket)
        for tickets in groups.values():
            # Any member's request describes the whole group: equal batch
            # keys mean semantically identical work.
            rep = tickets[0].request
            with self._state_lock:
                start_ms = self._clock_ms
            live = self._expire(tickets, start_ms)
            if not live:
                continue
            if self.tiering is not None:
                self.tiering.record_access(
                    self._group_columns(rep), amount=float(len(live)), at=start_ms
                )
            blocked = [
                c for c in self._group_columns(rep) if c in self._quarantined
            ]
            if blocked:
                reason = self._quarantined[blocked[0]]
                for ticket in live:
                    self.metrics.inc("server_quarantine_rejections")
                    ticket.future.set_result(
                        ServedResult(
                            ticket.request,
                            "error",
                            error=f"column {blocked[0]!r} quarantined: {reason}",
                        )
                    )
                continue
            try:
                execute_ms, payloads = self._execute_group_resilient(rep, live)
            except PoolAdmissionError as exc:
                for ticket in live:
                    self.metrics.inc("server_pool_rejections")
                    ticket.future.set_result(
                        ServedResult(ticket.request, "rejected", error=str(exc))
                    )
                continue
            except CorruptTileError as exc:
                # Persistent corruption: the re-decode-from-source
                # fallback failed too, so the source bytes themselves are
                # bad.  Quarantine the column and answer with a
                # structured error instead of crashing the scheduler.
                self._quarantine(exc)
                for ticket in live:
                    ticket.future.set_result(
                        ServedResult(ticket.request, "error", error=str(exc))
                    )
                continue
            except TransientDecodeError as exc:
                # Still failing after max_retries backoffs.
                for ticket in live:
                    self.metrics.inc("server_transient_failures")
                    ticket.future.set_result(
                        ServedResult(ticket.request, "error", error=str(exc))
                    )
                continue
            with self._state_lock:
                self._clock_ms = start_ms + execute_ms
                self.metrics.gauge("server_clock_ms", self._clock_ms)
            self.metrics.inc("server_batches")
            if len(live) > 1:
                self.metrics.inc("server_batched_requests", len(live) - 1)
            for ticket, payload in zip(live, payloads):
                wait = start_ms - ticket.request.submitted_ms
                result = ServedResult(
                    ticket.request,
                    "ok",
                    queue_wait_ms=wait,
                    execute_ms=execute_ms,
                    batch_size=len(live),
                    **payload,
                )
                self.metrics.inc("server_served")
                self.metrics.observe("latency_ms", result.latency_ms)
                self.metrics.observe("queue_wait_ms", wait)
                self.metrics.observe("execute_ms", execute_ms)
                ticket.future.set_result(result)
        # Tier maintenance between batches: re-encoding runs here, off
        # the query path (no ticket is waiting on this thread), and
        # publication is the store's atomic epoch-checked swap.
        if self.tiering is not None:
            self.tiering.maybe_run()

    def _expire(self, tickets: list[_Ticket], now_ms: float) -> list[_Ticket]:
        live = []
        for ticket in tickets:
            timeout = ticket.request.timeout_ms
            wait = now_ms - ticket.request.submitted_ms
            if timeout is not None and wait > timeout:
                self.metrics.inc("server_timeouts")
                ticket.future.set_result(
                    ServedResult(ticket.request, "timeout", queue_wait_ms=wait)
                )
            else:
                live.append(ticket)
        return live

    @staticmethod
    def _group_columns(request: ServeRequest) -> tuple[str, ...]:
        """The store columns a request's group will touch."""
        if request.kind == "query":
            return request.query.columns
        return (request.name,)

    def _execute_group_resilient(
        self, rep: ServeRequest, live: list[_Ticket]
    ) -> tuple[float, list[dict]]:
        """Run one group with bounded retry and corruption recovery.

        Transient failures (:class:`TransientDecodeError`) are retried up
        to ``max_retries`` times with simulated exponential backoff added
        to the group's execution time.  Corruption
        (:class:`CorruptTileError`) triggers one re-decode-from-source
        per column — the cached decoded image is invalidated and the
        group re-executes against the compressed bytes; if the same
        column fails again the source itself is bad and the error
        propagates (the caller quarantines it).
        """
        attempts = 0
        backoff_ms = 0.0
        redecoded: set[str] = set()
        while True:
            try:
                with self._engine_lock:
                    if rep.kind == "query":
                        execute_ms, payloads = self._run_query_group(rep.query, live)
                    else:
                        execute_ms, payloads = self._run_lookup_group(rep.name, live)
                return execute_ms + backoff_ms, payloads
            except TransientDecodeError:
                self.metrics.inc("server_transient_retries")
                if attempts >= self.max_retries:
                    raise
                backoff_ms += self.retry_backoff_ms * (2.0 ** attempts)
                attempts += 1
            except CorruptTileError as exc:
                self.metrics.inc("server_checksum_failures")
                if exc.column in redecoded:
                    raise
                redecoded.add(exc.column)
                self.metrics.inc("server_corruption_redecodes")
                self._invalidate_column(exc.column)

    def _invalidate_column(self, column: str) -> None:
        """Drop cached derivatives of a column — on every shard."""
        if self.router is not None:
            self.router.invalidate_column(column)
        else:
            self.engine.invalidate_column(column)

    def _quarantine(self, exc: CorruptTileError) -> None:
        """Record a column as persistently corrupt and drop its images."""
        self._quarantined[exc.column] = exc.reason
        self.metrics.inc("server_quarantines")
        self.metrics.gauge("server_quarantined_columns", len(self._quarantined))
        self._invalidate_column(exc.column)

    def quarantined_columns(self) -> dict[str, str]:
        """Currently quarantined columns mapped to their failure reason."""
        return dict(self._quarantined)

    def release_quarantine(self, column: str) -> bool:
        """Lift a quarantine (e.g. after the source bytes were repaired).

        Returns True if the column was quarantined.
        """
        present = self._quarantined.pop(column, None) is not None
        self.metrics.gauge("server_quarantined_columns", len(self._quarantined))
        return present

    def _place_pinned(self, columns: tuple[str, ...]):
        """Stage a group's columns through the pool and pin them for it.

        Columns with a pinned decoded image (the hot tier) skip
        compressed staging entirely: every read path serves the decoded
        image, so transferring the compressed bytes would only burn PCIe
        and pool budget.  If a tier swap drops the pinned image
        mid-group, reads fall back to the column snapshot's own payload
        — the pool resident is accounting, not a correctness dependency.
        """
        staged = tuple(
            c for c in columns if self.engine.pinned_decoded(c) is None
        )
        self.store.place_on_device(self.pool, self.device, columns=staged)
        return self.pool.pinned(*(f"compressed/{c}" for c in staged))

    def _run_query_group(
        self, query: SSBQuery, tickets: list[_Ticket]
    ) -> tuple[float, list[dict]]:
        if self.router is not None:
            # Sharded path: placement pins each shard's slice, the
            # router's clock (slowest routed shard + interconnect merge)
            # is the group's execution time.
            with self.router.pinned(query.columns) as place_ms:
                groups, execute_ms = self.router.execute(query)
            execute_ms += place_ms
            return execute_ms, [{"groups": dict(groups)} for _ in tickets]
        before = self.device.elapsed_ms
        with self._place_pinned(query.columns):
            result = self.engine.run(query)
        execute_ms = self.device.elapsed_ms - before
        return execute_ms, [{"groups": dict(result.groups)} for _ in tickets]

    def _run_lookup_group(
        self, name: str, tickets: list[_Ticket]
    ) -> tuple[float, list[dict]]:
        col = self.store[name]
        all_indices = np.concatenate([t.request.indices for t in tickets])
        if self.router is not None:
            with self.router.pinned((name,)) as place_ms:
                fetched, execute_ms = self.router.lookup(name, all_indices)
            execute_ms += place_ms
            payloads = []
            offset = 0
            for ticket in tickets:
                n = ticket.request.indices.size
                payloads.append({"values": fetched[offset : offset + n]})
                offset += n
            return execute_ms, payloads
        before = self.device.elapsed_ms
        with self._place_pinned((name,)):
            # Branch on the one ``col`` snapshot fetched above: re-probing
            # the store mid-lookup could observe the other side of a
            # racing tier swap and pair the wrong payload with the
            # verdict.  A hot column's pinned decoded image serves the
            # batch as a plain coalesced gather — no per-tile decode.
            pinned = self.engine.pinned_decoded(name)
            if pinned is not None:
                with self.device.launch(
                    f"lookup-{name}", grid_blocks=max(1, all_indices.size // 128)
                ) as k:
                    k.read_gather(all_indices.size, 4, pinned.size * 4)
                    k.compute(all_indices.size)
                fetched = np.asarray(pinned)[all_indices]
            elif self.engine.inline_column(col):
                fetched = gather(col.payload, all_indices, self.device).values
            else:
                if col.tier == "cold":
                    # Entropy-coded payloads have no random access: the
                    # batch pays the unspill + cascade decode prologue.
                    self.engine.decompress_first((name,))
                # Uncompressed: each index pulls one coalesced element.
                with self.device.launch(
                    f"lookup-{name}", grid_blocks=max(1, all_indices.size // 128)
                ) as k:
                    k.read_gather(all_indices.size, 4, col.values.size * 4)
                    k.compute(all_indices.size)
                fetched = np.asarray(col.values)[all_indices]
        execute_ms = self.device.elapsed_ms - before
        payloads = []
        offset = 0
        for ticket in tickets:
            n = ticket.request.indices.size
            payloads.append({"values": fetched[offset : offset + n]})
            offset += n
        return execute_ms, payloads

    def metrics_snapshot(self) -> dict:
        """Server + pool metrics as one flat dict."""
        return self.metrics.snapshot()
