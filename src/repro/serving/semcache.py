"""Partition-aware semantic result cache with cross-query partial reuse.

The serving layer caches column images and zone maps, but every query
still re-executes from scratch — dashboard traffic hitting the same
handful of filters re-pays full decode+aggregate cost per request.  The
tile grid is exactly the partition granularity at which that work can be
cached: the streaming executor already computes each morsel's partial
aggregate independently and merges partials with exact integer
arithmetic, so a partial computed for one query is a *value* that can be
re-merged into any later query that provably keeps the same rows over
that tile span.

:class:`SemanticResultCache` stores those per-morsel partials keyed by
the query's **semantic signature**:

* a *base key* identifying what the plan computes — the query's declared
  ``plan_key`` (or name), the content fingerprints of its dimension
  lookups, and the operator trace of the zero-row plan pass; and
* the *canonical predicate key* of every filter conjunct the plan
  applied (pushdown and exact row filters), from
  :func:`repro.engine.predicates.canonical_key`.

On a new query the cache probes for partials under the exact signature,
then scans recent **donor** entries sharing the base key but filtered
differently.  A donor's partial for a tile span transfers when zone-map
bounds prove the two predicates are row-equivalent over every tile of
the span — for each column whose canonical conjuncts differ, both
predicates must be all-true on the tile (``tile_must_match``), or
neither may match any of its rows (``tile_may_match`` false for both).
That rule covers the dashboard patterns directly: a ``year=1993``
drill-down to a month reuses the year-level partials for every tile the
month provably owns outright or provably misses, and a cross-dimension
filter reuses tiles where the extra conjunct is vacuous.

Only the *uncovered* morsels execute; cached and fresh partials merge
bit-identically through :meth:`TileStreamExecutor.merge_parts` (exact
Python ints, deterministic morsel order), so a warm answer is the same
object a cold run produces.

Partials live as ``partial``-kind residents of a private
:class:`~repro.serving.pool.ColumnPool`, reusing its cost-aware
greedy-dual eviction under a byte budget: a partial's reconstruction
cost is the wall time of the morsel that computed it, so cheap-to-redo
and long-unused partials evict first.

Staleness is impossible by construction: every partial carries the
per-column **epoch** tuple of the columns its value depends on, epochs
bump on :meth:`invalidate_column` (wired to ``UpdatableColumn.flush``
through ``CrystalEngine.invalidate_column``), and the execute loop
snapshots epochs before probing and re-checks them after running fresh
morsels — a flush racing the query forces a retry against the new
epochs instead of merging old partials with new data.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from hashlib import sha1

import numpy as np

from repro.engine.predicates import ColumnPredicate
from repro.serving.metrics import MetricsRegistry
from repro.serving.pool import ColumnPool, PoolAdmissionError

__all__ = ["DEFAULT_SEMCACHE_BUDGET", "CachedPartial", "SemanticResultCache"]

#: Default byte budget for cached partials.  Partial aggregates are tiny
#: (a dict of group sums per morsel), so this holds thousands of spans —
#: the budget exists to bound pathological workloads, not typical ones.
DEFAULT_SEMCACHE_BUDGET = 16 * 1024 * 1024

#: How many most-recent same-base entries a probe considers as donors.
MAX_DONORS = 8

#: How often a racing flush may force a re-execution before the query
#: gives up on the cache and runs fully fresh (still correct, just
#: uncached) — bounds latency under a pathological flush storm.
MAX_EPOCH_RETRIES = 8


def _digest(obj: object) -> str:
    return sha1(repr(obj).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class CachedPartial:
    """One morsel span's partial aggregate, frozen for reuse.

    ``agg_ops`` and ``result`` are exactly what the morsel pipeline
    produced (see ``TileStreamExecutor.merge_parts``); ``epochs`` pins
    the per-column versions the value was computed against, aligned with
    the owning entry's sorted column tuple.
    """

    span: tuple[int, int]
    agg_ops: tuple[str, ...]
    result: tuple[tuple[int, int], ...]
    epochs: tuple[int, ...]
    wall_ms: float

    @property
    def nbytes(self) -> int:
        # Accounting estimate: dict entry overhead dominates small ints.
        return 112 + 56 * len(self.result)

    def as_part(self) -> tuple[list[str], dict[int, int]]:
        return (list(self.agg_ops), dict(self.result))


@dataclass
class _Entry:
    """All cached spans of one semantic signature."""

    sig: str
    base_hash: str
    pred_key: tuple
    predicates: tuple[ColumnPredicate, ...]
    #: Sorted tuple of every column the partials' values depend on
    #: (loaded fact columns plus predicate columns); epochs align to it.
    columns: tuple[str, ...]
    #: Spans believed resident in the pool.  Mutated lock-free from the
    #: pool's eviction release hook (``set.discard`` is atomic under the
    #: GIL), so readers iterate over a snapshot and re-validate through
    #: ``pool.get``.
    spans: set[tuple[int, int]] = field(default_factory=set)


class SemanticResultCache:
    """Byte-budgeted cache of per-tile-span partial aggregates.

    Thread-safe; designed to sit between ``CrystalEngine._stream`` and
    the :class:`~repro.engine.streaming.TileStreamExecutor`.  Lock
    ordering is strictly ``semcache lock -> pool lock``: pool calls that
    may evict (and fire release hooks re-entering this module) happen
    *outside* the semcache lock, and the release hook itself touches
    only a GIL-atomic set.
    """

    def __init__(
        self,
        budget_bytes: int = DEFAULT_SEMCACHE_BUDGET,
        metrics: MetricsRegistry | None = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Private pool (own metrics registry): partials compete with each
        # other under this budget, not with the serving layer's column
        # images, and its pool_* counters stay out of the server's.
        self.pool = ColumnPool(budget_bytes)
        self._lock = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        #: Signatures per base hash, oldest first (recency for donor scan).
        self._by_base: dict[str, list[str]] = {}
        self._epochs: dict[str, int] = {}

    # -- epochs / invalidation ---------------------------------------------

    def epoch(self, column: str) -> int:
        with self._lock:
            return self._epochs.get(column, 0)

    def _epoch_snapshot(self, columns: tuple[str, ...]) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._epochs.get(c, 0) for c in columns)

    def invalidate_column(self, name: str) -> int:
        """A column's bytes changed: bump its epoch, drop dependent entries.

        Returns the number of entries dropped.  Called from
        ``CrystalEngine.invalidate_column`` (itself fired by every
        ``UpdatableColumn.flush``), so a flushed column can never serve
        a pre-flush partial: surviving in-flight queries fail the epoch
        re-check and retry against fresh data.
        """
        with self._lock:
            self._epochs[name] = self._epochs.get(name, 0) + 1
            doomed = [e for e in self._entries.values() if name in e.columns]
            partials = 0
            for entry in doomed:
                partials += self._drop_entry(entry)
        if doomed:
            self.metrics.inc("semcache_invalidations", len(doomed))
            self.metrics.inc("semcache_invalidated_partials", partials)
        self._publish()
        return len(doomed)

    def _drop_entry(self, entry: _Entry) -> int:
        """Remove one entry and its pool residents (caller holds the lock)."""
        self._entries.pop(entry.sig, None)
        sigs = self._by_base.get(entry.base_hash)
        if sigs is not None:
            try:
                sigs.remove(entry.sig)
            except ValueError:
                pass
            if not sigs:
                self._by_base.pop(entry.base_hash, None)
        dropped = 0
        for span in tuple(entry.spans):
            entry.spans.discard(span)
            # invalidate() does not fire release hooks, so no re-entry.
            if self.pool.invalidate(self._span_key(entry.sig, span)):
                dropped += 1
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_base.clear()
            self.pool.clear()
        self._publish()

    # -- bookkeeping ---------------------------------------------------------

    @staticmethod
    def _span_key(sig: str, span: tuple[int, int]) -> str:
        return f"partial/{sig}/{span[0]}-{span[1]}"

    def _signature(self, engine, executor, plan) -> tuple[str, str]:
        # The tile grid and morsel width shape the spans themselves, so
        # they are part of what makes partials compatible at all.
        base_repr = repr((plan.base_key, int(engine.num_tiles), int(executor.morsel_tiles)))
        return _digest((base_repr, plan.pred_key)), _digest(base_repr)

    @staticmethod
    def _entry_columns(plan) -> tuple[str, ...]:
        cols = set(plan.query.columns)
        cols.update(p.column for p in plan.predicates)
        return tuple(sorted(cols))

    def _touch(self, sig: str, base_hash: str) -> None:
        """Move a signature to the recent end of its base's donor list."""
        sigs = self._by_base.get(base_hash)
        if sigs and sigs[-1] != sig and sig in sigs:
            sigs.remove(sig)
            sigs.append(sig)

    def stats(self) -> dict:
        """Counters plus current occupancy, for benchmarks and tests."""
        out = {
            k: v
            for k, v in self.metrics.snapshot().items()
            if k.startswith("semcache_")
        }
        out["semcache_entries"] = len(self._entries)
        out["semcache_resident_bytes"] = self.pool.resident_bytes
        return out

    def _publish(self) -> None:
        self.metrics.gauge("semcache_entries", len(self._entries))
        self.metrics.gauge("semcache_resident_bytes", self.pool.resident_bytes)

    # -- probe ----------------------------------------------------------------

    def _get_partial(
        self, entry: _Entry, span: tuple[int, int]
    ) -> CachedPartial | None:
        """Fetch one span's partial if resident and epoch-fresh."""
        resident = self.pool.get(self._span_key(entry.sig, span))
        if resident is None:
            entry.spans.discard(span)  # evicted behind our back
            return None
        partial: CachedPartial = resident.payload
        if partial.epochs != self._epoch_snapshot(entry.columns):
            return None
        return partial

    def _probe(
        self, engine, plan, sig: str, base_hash: str
    ) -> dict[tuple[int, int], CachedPartial]:
        """Best resident coverage of the plan's morsel spans."""
        wanted = [(m.tile_lo, m.tile_hi) for m in plan.morsels]
        covered: dict[tuple[int, int], CachedPartial] = {}
        with self._lock:
            exact = self._entries.get(sig)
            donors = [
                self._entries[s]
                for s in reversed(self._by_base.get(base_hash, []))
                if s != sig and s in self._entries
            ][:MAX_DONORS]
            if exact is not None:
                self._touch(sig, base_hash)
        if exact is not None:
            for span in wanted:
                if span in exact.spans:
                    partial = self._get_partial(exact, span)
                    if partial is not None:
                        covered[span] = partial
        if len(covered) == len(wanted):
            return covered
        for donor in donors:
            missing = [s for s in wanted if s not in covered]
            if not missing:
                break
            if not any(s in donor.spans for s in missing):
                continue
            try:
                valid = self._donor_valid_tiles(engine, plan.predicates, donor.predicates)
            except Exception:
                continue  # bounds unavailable for some column: no donation
            for span in missing:
                if span not in donor.spans or not valid[span[0] : span[1]].all():
                    continue
                partial = self._get_partial(donor, span)
                if partial is not None:
                    covered[span] = partial
                    self.metrics.inc("semcache_donated_partials")
        return covered

    def _donor_valid_tiles(
        self,
        engine,
        q_preds: tuple[ColumnPredicate, ...],
        d_preds: tuple[ColumnPredicate, ...],
    ) -> np.ndarray:
        """Tiles where the donor's predicate provably keeps the query's rows.

        For tile ``t`` the donor's span partial equals the fresh one iff
        the two predicates agree row-wise over ``t``.  Zone-map bounds
        prove that two ways:

        * every column whose canonical conjuncts differ is all-true on
          ``t`` under *both* predicates (differing conjuncts vacuous,
          identical conjuncts agree trivially); or
        * neither predicate can match any row of ``t`` (both partials
          contribute the aggregate identity there).
        """
        n = engine.num_tiles
        q_by = {p.column: p for p in q_preds}
        d_by = {p.column: p for p in d_preds}
        must_both = np.ones(n, dtype=bool)
        for col in set(q_by) | set(d_by):
            qp, dp = q_by.get(col), d_by.get(col)
            if qp is not None and dp is not None and qp.cache_key() == dp.cache_key():
                continue  # identical conjunct: agrees on every row anywhere
            mins, maxs = engine.column_tile_bounds(col)
            if qp is not None:
                must_both &= qp.tile_must_match(mins, maxs)
            if dp is not None:
                must_both &= dp.tile_must_match(mins, maxs)
        if must_both.all():
            return must_both
        may_q = np.ones(n, dtype=bool)
        may_d = np.ones(n, dtype=bool)
        for preds, may in ((q_preds, may_q), (d_preds, may_d)):
            for p in preds:
                mins, maxs = engine.column_tile_bounds(p.column)
                may &= p.tile_may_match(mins, maxs)
        return must_both | (~may_q & ~may_d)

    # -- install --------------------------------------------------------------

    def _ensure_entry(self, sig: str, base_hash: str, plan) -> _Entry:
        with self._lock:
            entry = self._entries.get(sig)
            if entry is None:
                entry = _Entry(
                    sig=sig,
                    base_hash=base_hash,
                    pred_key=plan.pred_key,
                    predicates=plan.predicates,
                    columns=self._entry_columns(plan),
                )
                self._entries[sig] = entry
                self._by_base.setdefault(base_hash, []).append(sig)
            else:
                self._touch(sig, base_hash)
            return entry

    def _install(
        self,
        entry: _Entry,
        partials: list[CachedPartial],
    ) -> None:
        """Admit partials to the pool and index their spans.

        Admission runs outside the semcache lock (it may evict and fire
        release hooks); a partial the budget rejects is simply not
        cached.
        """
        for partial in partials:
            span = partial.span
            try:
                self.pool.admit(
                    self._span_key(entry.sig, span),
                    partial.nbytes,
                    kind="partial",
                    payload=partial,
                    reconstruct_cost_ms=partial.wall_ms,
                    release=lambda e=entry, s=span: e.spans.discard(s),
                )
            except PoolAdmissionError:
                self.metrics.inc("semcache_install_rejections")
                continue
            entry.spans.add(span)
            self.metrics.inc("semcache_installs")

    # -- the cache-aware execute path -----------------------------------------

    def execute(self, engine, executor, query) -> dict[int, int]:
        """Run ``query`` through ``executor``, reusing cached partials.

        Drop-in replacement for ``executor.execute(query)``: the answer
        is bit-identical (cached partials merge through the same exact
        integer path, in the same morsel order), only the work differs.
        """
        plan = executor.plan(query)
        for _attempt in range(MAX_EPOCH_RETRIES):
            # Re-derived each attempt: a re-plan after a racing flush may
            # change lookup fingerprints (and thus the signature).
            sig, base_hash = self._signature(engine, executor, plan)
            columns = self._entry_columns(plan)
            snapshot = self._epoch_snapshot(columns)
            covered = self._probe(engine, plan, sig, base_hash)
            fresh = [
                m for m in plan.morsels if (m.tile_lo, m.tile_hi) not in covered
            ]
            t0 = time.perf_counter()
            outcomes = executor.run_morsels(plan, fresh)
            exec_ms = (time.perf_counter() - t0) * 1e3
            if self._epoch_snapshot(columns) != snapshot:
                # A flush raced us: cached partials and fresh outcomes may
                # straddle the update.  Re-plan against the new bytes.
                self.metrics.inc("semcache_epoch_retries")
                plan = executor.plan(query)
                continue
            by_span = {
                (m.tile_lo, m.tile_hi): o for m, o in zip(fresh, outcomes)
            }
            parts: list[tuple[list[str], dict[int, int]]] = []
            for m in plan.morsels:
                span = (m.tile_lo, m.tile_hi)
                if span in covered:
                    parts.append(covered[span].as_part())
                else:
                    o = by_span[span]
                    parts.append((o.pipeline.agg_ops, o.result))
            merged = executor.merge_parts(plan.plan_result, parts)
            # Price the fused kernel from the fresh work only: reused
            # partials are the work the cache saved.
            executor._price_fused_kernel(
                query, plan.ppipe, [o.pipeline for o in outcomes]
            )
            executor.publish_stats(
                plan, outcomes, exec_ms, cached_morsels=len(covered)
            )
            self._record_coverage(covered, fresh, plan)
            if fresh:
                entry = self._ensure_entry(sig, base_hash, plan)
                self._install(entry, self._freeze(fresh, outcomes, snapshot))
            if covered:
                # Promote donated spans under this signature so the next
                # identical query hits them without a donor scan.
                entry = self._ensure_entry(sig, base_hash, plan)
                promoted = [
                    CachedPartial(
                        span=p.span,
                        agg_ops=p.agg_ops,
                        result=p.result,
                        epochs=snapshot,
                        wall_ms=p.wall_ms,
                    )
                    for span, p in covered.items()
                    if span not in entry.spans
                ]
                if promoted:
                    self._install(entry, promoted)
            self._publish()
            return merged
        # Flush storm exhausted the retries: serve a fully fresh,
        # uncached execution (correct, just no reuse this time).
        self.metrics.inc("semcache_bypasses")
        return executor.execute(query)

    @staticmethod
    def _freeze(
        fresh: list, outcomes: list, snapshot: tuple[int, ...]
    ) -> list[CachedPartial]:
        return [
            CachedPartial(
                span=(m.tile_lo, m.tile_hi),
                agg_ops=tuple(o.pipeline.agg_ops),
                result=tuple(
                    (int(k), int(v)) for k, v in sorted(o.result.items())
                ),
                epochs=snapshot,
                wall_ms=o.wall_ms,
            )
            for m, o in zip(fresh, outcomes)
        ]

    def _record_coverage(self, covered, fresh, plan) -> None:
        total = len(plan.morsels)
        self.metrics.inc("semcache_queries")
        self.metrics.inc("semcache_covered_morsels", len(covered))
        self.metrics.inc("semcache_fresh_morsels", len(fresh))
        if total and not fresh:
            self.metrics.inc("semcache_hits")
        elif covered:
            self.metrics.inc("semcache_partial_hits")
        else:
            self.metrics.inc("semcache_misses")
        if covered:
            self.metrics.observe(
                "semcache_saved_ms", sum(p.wall_ms for p in covered.values())
            )
