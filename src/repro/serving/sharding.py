"""Sharded multi-GPU serving: tile-range column shards behind one router.

The paper's SF=20 evaluation (120M lineorder rows) does not fit one
simulated device at the budgets the serving layer enforces, and the §1
motivation is exactly this: working sets larger than one GPU shard
"between multiple GPUs", paying interconnect cost for result merging.
This module connects :class:`~repro.gpusim.multigpu.ShardedDevice` to the
serving stack:

* Every compressed column is partitioned **tile-range-wise** over ``N``
  simulated devices on codec-tile-aligned boundaries (no codec tile ever
  straddles two devices).  A :class:`ColumnShard` owns one contiguous
  engine-tile span: its own :class:`~repro.gpusim.executor.GPUDevice`,
  its own byte-budgeted :class:`~repro.serving.pool.ColumnPool`, a
  :class:`~repro.engine.crystal.CrystalEngine` view of the store, and a
  :class:`~repro.engine.streaming.TileStreamExecutor` restricted to the
  shard's tile span with its own morsel workers.
* The :class:`ShardRouter` routes each query only to shards whose tile
  ranges survive zone-map pushdown of the query's declared predicate IR
  (:meth:`~repro.engine.crystal.CrystalEngine.surviving_tiles`), runs
  shard-local streaming execution concurrently, and scatter-gathers the
  per-shard partial aggregates through the executor's exact-integer
  ``merge_parts`` path — paying the modeled interconnect cost via
  :meth:`~repro.gpusim.multigpu.ShardedDevice.merge_results` — so
  answers are bit-identical to single-device execution at every shard
  count.
* Hot small columns can be **replicated**: pinned in full on every
  shard's pool, so point lookups against them never cross the
  interconnect.  Updates fan out: one
  :class:`~repro.core.updates.UpdatableColumn` flush invalidates every
  shard's caches, pool residents and semantic-cache epochs.

Per-shard resident bytes, queue depth, latency and routing skew all land
in the shared :class:`~repro.serving.metrics.MetricsRegistry` under
labeled keys (``shard_execute_ms{shard=2}`` …).
"""

from __future__ import annotations

import contextlib
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.core.random_access import gather
from repro.engine.crystal import TILE, CrystalEngine, SSBQuery
from repro.engine.streaming import TileStreamExecutor
from repro.formats.base import TileCodec
from repro.formats.registry import get_codec
from repro.gpusim.multigpu import ShardedDevice
from repro.gpusim.spec import GPUSpec
from repro.serving.metrics import MetricsRegistry
from repro.serving.pool import ColumnPool
from repro.serving.semcache import DEFAULT_SEMCACHE_BUDGET, SemanticResultCache
from repro.ssb.dbgen import SSBDatabase
from repro.ssb.loader import ColumnStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.updates import UpdatableColumn

__all__ = ["ColumnShard", "ShardRouter", "codec_tile_alignment"]


def codec_tile_alignment(store: ColumnStore, columns=None) -> int:
    """Rows per legal shard boundary: the LCM of every codec tile size.

    Shard boundaries must land on every stored codec's tile grid (and on
    the engine's :data:`~repro.engine.crystal.TILE` grid), or a codec
    tile would straddle two devices and both would have to decode it.
    GPU-SIMDBP128's 4096-value blocks dominate in practice: mixed stores
    align to 4096 rows.
    """
    align = TILE
    names = columns if columns is not None else list(store.columns)
    for name in names:
        col = store[name]
        if not col.codec_name or col.payload is None:
            continue
        codec = get_codec(col.codec_name)
        if isinstance(codec, TileCodec):
            align = math.lcm(align, int(codec.tile_elements(col.payload)))
    return align


@dataclass
class ColumnShard:
    """One contiguous tile-range slice of the store on its own device."""

    index: int
    tile_lo: int
    tile_hi: int
    row_lo: int
    row_hi: int
    device: object
    pool: ColumnPool
    engine: CrystalEngine
    executor: TileStreamExecutor
    #: Serializes all access to the shard's (not thread-safe) device and
    #: executor: the router dispatches at most one query to a shard at a
    #: time, even when several callers share the router.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Queries routed to this shard so far (routing-skew accounting).
    routed: int = 0
    #: Aggregate simulated device ms this shard has executed.
    busy_ms: float = 0.0

    @property
    def num_tiles(self) -> int:
        return self.tile_hi - self.tile_lo

    @property
    def num_rows(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def empty(self) -> bool:
        return self.tile_hi <= self.tile_lo


@dataclass
class _ShardOutcome:
    """One shard's contribution to a routed query."""

    shard: int
    groups: dict[int, int]
    agg_ops: tuple[str, ...]
    device_ms: float
    wall_ms: float
    morsels: int


class ShardRouter:
    """Routes queries to tile-range shards and merges their partials.

    One router owns ``num_shards`` :class:`ColumnShard`\\ s over a single
    :class:`~repro.ssb.loader.ColumnStore`.  ``budget_bytes`` is the
    byte budget of **each** shard's pool (default: the device spec's
    global memory); ``replicate_columns`` are pinned in full on every
    shard.  The router itself is the serving layer's "device": its
    :attr:`elapsed_ms` is the simulated wall-clock of everything routed
    through it (slowest selected shard per query, plus interconnect
    merges), which a :class:`~repro.serving.scheduler.QueryServer` uses
    as its serving clock.
    """

    def __init__(
        self,
        db: SSBDatabase,
        store: ColumnStore,
        num_shards: int,
        budget_bytes: int | None = None,
        metrics: MetricsRegistry | None = None,
        stream_workers: int = 4,
        morsel_tiles: int | None = None,
        interconnect_gbps: float = 50.0,
        spec: GPUSpec | None = None,
        pushdown: bool = True,
        verify_cached: bool = False,
        semantic_cache: bool = False,
        semcache_budget_bytes: int | None = None,
        replicate_columns: Iterable[str] = (),
        sharded: ShardedDevice | None = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.db = db
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if sharded is None:
            kwargs = {"interconnect_gbps": interconnect_gbps}
            if spec is not None:
                kwargs["spec"] = spec
            sharded = ShardedDevice(num_shards, **kwargs)
        elif sharded.num_devices != num_shards:
            raise ValueError(
                f"sharded device has {sharded.num_devices} devices, "
                f"router wants {num_shards} shards"
            )
        self.sharded = sharded
        self.num_rows = db.num_lineorder_rows
        #: Rows per legal shard boundary (codec tile LCM).
        self.alignment = codec_tile_alignment(store)
        self.replicated = frozenset(replicate_columns)
        unknown = self.replicated - set(store.columns)
        if unknown:
            raise ValueError(f"cannot replicate unknown columns {sorted(unknown)}")
        per_shard_budget = (
            budget_bytes
            if budget_bytes is not None
            else sharded.spec.global_capacity_bytes
        )
        self.shards: list[ColumnShard] = []
        for i, (row_lo, row_hi) in enumerate(
            sharded.shard_bounds(self.num_rows, tile=self.alignment)
        ):
            tile_lo = row_lo // TILE
            tile_hi = -(-row_hi // TILE)
            pool = ColumnPool(
                per_shard_budget, metrics=self.metrics, metric_labels={"shard": i}
            )
            engine = CrystalEngine(
                db,
                store,
                device=sharded.devices[i],
                pool=pool,
                pushdown=pushdown,
                streaming=True,
                stream_workers=stream_workers,
                morsel_tiles=morsel_tiles,
            )
            engine.metrics = self.metrics
            engine.verify_cached = verify_cached
            if semantic_cache:
                engine.semcache = SemanticResultCache(
                    semcache_budget_bytes
                    if semcache_budget_bytes is not None
                    else DEFAULT_SEMCACHE_BUDGET,
                    metrics=self.metrics,
                )
            executor = TileStreamExecutor(
                engine,
                workers=stream_workers,
                morsel_tiles=morsel_tiles,
                metrics=self.metrics,
                tile_span=(tile_lo, tile_hi),
            )
            # The engine's own streaming entry points (arena accounting,
            # idle trims) operate on the shard-scoped executor.
            engine._stream_executor = executor
            self.shards.append(
                ColumnShard(
                    index=i,
                    tile_lo=tile_lo,
                    tile_hi=tile_hi,
                    row_lo=row_lo,
                    row_hi=row_hi,
                    device=sharded.devices[i],
                    pool=pool,
                    engine=engine,
                    executor=executor,
                )
            )
        self._dispatch: ThreadPoolExecutor | None = None
        self._clock_lock = threading.Lock()
        self._elapsed_ms = 0.0
        self._inflight = [0] * num_shards
        #: Routing/merge details of the most recent :meth:`execute`.
        self.last_execution: dict = {}
        if self.replicated:
            self.place_columns(tuple(sorted(self.replicated)))

    # -- introspection -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def elapsed_ms(self) -> float:
        """Simulated wall-clock of all work routed so far."""
        with self._clock_lock:
            return self._elapsed_ms

    @property
    def capacity_bytes(self) -> int:
        return self.sharded.capacity_bytes

    def _advance(self, ms: float) -> float:
        with self._clock_lock:
            self._elapsed_ms += ms
            return self._elapsed_ms

    def _nonempty(self) -> list[ColumnShard]:
        return [s for s in self.shards if not s.empty]

    # -- placement and replication -------------------------------------------

    def _shard_compressed_bytes(self, col, shard: ColumnShard) -> int:
        """This shard's slice of a column's compressed footprint.

        Rows-proportional with telescoping integer splits, so the shard
        shares always sum exactly to ``col.nbytes``.  Replicated columns
        are whole everywhere.
        """
        if col.name in self.replicated or self.num_rows == 0:
            return col.nbytes
        lo = col.nbytes * shard.row_lo // self.num_rows
        hi = col.nbytes * shard.row_hi // self.num_rows
        return hi - lo

    def place_columns(self, columns: tuple[str, ...]) -> float:
        """Stage columns' compressed slices into every shard's pool.

        Each shard admits (and pays PCIe transfer for) only its own tile
        range's share — replicated columns in full, pinned.  Returns the
        simulated wall-clock of the placement: shards transfer
        concurrently, so it is the slowest shard's transfer time.
        """
        wall_ms = 0.0
        for shard in self._nonempty():
            shard_ms = 0.0
            with shard.lock:
                for name in columns:
                    if shard.engine.pinned_decoded(name) is not None:
                        # Hot tier: the pinned decoded image serves every
                        # read on this shard — staging the compressed
                        # bytes would only burn PCIe and pool budget.
                        continue
                    col = self.store[name]
                    key = f"compressed/{name}"
                    if shard.pool.get(key) is not None:
                        continue
                    nbytes = self._shard_compressed_bytes(col, shard)
                    payload = col.payload
                    if payload is None and col.spill_path is not None:
                        payload = self.store.ensure_payload(name)
                    shard.pool.admit(
                        key,
                        nbytes,
                        kind="compressed",
                        payload=payload,
                        reconstruct_cost_ms=shard.device.spec.pcie.transfer_ms(
                            nbytes
                        ),
                        pin=name in self.replicated,
                    )
                    shard_ms += shard.device.transfer_to_device(nbytes)
                    if name in self.replicated:
                        self.metrics.inc(
                            "shard_replicated_bytes",
                            nbytes,
                            labels={"shard": shard.index},
                        )
            wall_ms = max(wall_ms, shard_ms)
        if wall_ms:
            self._advance(wall_ms)
        return wall_ms

    @contextlib.contextmanager
    def pinned(self, columns: tuple[str, ...]) -> Iterator[float]:
        """Place ``columns`` on every shard and pin them for the block.

        Yields the placement's simulated wall ms (0.0 on full pool hits).
        """
        place_ms = self.place_columns(columns)
        keys = tuple(f"compressed/{c}" for c in columns)
        with contextlib.ExitStack() as stack:
            for shard in self._nonempty():
                stack.enter_context(shard.pool.pinned(*keys))
            yield place_ms

    # -- routing -------------------------------------------------------------

    def route(self, query: SSBQuery) -> list[ColumnShard]:
        """Shards whose tile ranges survive the query's predicate pushdown.

        Uses the declared predicate IR against the shared zone maps; a
        query with no declared predicate fans out to every shard.  At
        least one shard is always selected (the aggregate identity must
        come from somewhere), mirroring the single-device engine's
        behavior when pushdown prunes everything.
        """
        candidates = self._nonempty()
        if query.predicate is not None and candidates:
            surviving = candidates[0].engine.surviving_tiles(query.predicate)
            selected = [
                s for s in candidates if surviving[s.tile_lo : s.tile_hi].any()
            ]
        else:
            selected = list(candidates)
        if not selected:
            selected = candidates[:1]
        for shard in selected:
            shard.routed += 1
            self.metrics.inc("shard_queries", labels={"shard": shard.index})
        self.metrics.inc("router_queries")
        self.metrics.inc("router_shards_selected", len(selected))
        self._publish_skew()
        return selected

    def _publish_skew(self) -> None:
        """Routing skew: busiest shard's share over the fair share."""
        counts = [s.routed for s in self._nonempty()]
        total = sum(counts)
        if total and counts:
            skew = max(counts) * len(counts) / total
            self.metrics.gauge("router_routing_skew", skew)
        for shard in self.shards:
            self.metrics.gauge(
                "shard_routed_total", shard.routed, labels={"shard": shard.index}
            )

    # -- execution -----------------------------------------------------------

    def _run_shard(self, shard: ColumnShard, query: SSBQuery) -> _ShardOutcome:
        with shard.lock:
            self._inflight[shard.index] += 1
            self.metrics.gauge(
                "shard_queue_depth",
                self._inflight[shard.index],
                labels={"shard": shard.index},
            )
            t0 = time.perf_counter()
            before = shard.device.elapsed_ms
            try:
                engine, executor = shard.engine, shard.executor
                # Cold-tier columns pay their unspill + cascade-decode
                # prologue per shard, like the single-device engine.
                engine.decompress_first(query.columns)
                if engine.semcache is not None:
                    groups = engine.semcache.execute(engine, executor, query)
                else:
                    groups = executor.execute(query)
                engine.last_stream_stats = executor.last_stats
            finally:
                self._inflight[shard.index] -= 1
                self.metrics.gauge(
                    "shard_queue_depth",
                    self._inflight[shard.index],
                    labels={"shard": shard.index},
                )
            device_ms = shard.device.elapsed_ms - before
            shard.busy_ms += device_ms
            stats = executor.last_stats
            return _ShardOutcome(
                shard=shard.index,
                groups=groups,
                agg_ops=tuple(stats.get("agg_ops", ())),
                device_ms=device_ms,
                wall_ms=(time.perf_counter() - t0) * 1e3,
                morsels=int(stats.get("morsels", 0)),
            )

    def _ensure_dispatch(self) -> ThreadPoolExecutor:
        if self._dispatch is None:
            self._dispatch = ThreadPoolExecutor(
                max_workers=max(1, self.num_shards), thread_name_prefix="shard"
            )
        return self._dispatch

    def execute(self, query: SSBQuery) -> tuple[dict[int, int], float]:
        """Run one query across its surviving shards; merge the partials.

        Returns ``(groups, wall_ms)``: the bit-identical merged answer
        and the simulated wall-clock — the slowest selected shard's
        device time plus the interconnect all-gather of the per-shard
        partials.  The router's :attr:`elapsed_ms` clock advances by the
        same amount.
        """
        selected = self.route(query)
        outcomes: list[_ShardOutcome | None] = [None] * len(selected)
        if len(selected) == 1:
            outcomes[0] = self._run_shard(selected[0], query)
        else:
            pool = self._ensure_dispatch()
            futures = [
                (shard, pool.submit(self._run_shard, shard, query))
                for shard in selected
            ]
            # Gather every future before raising, then surface the error
            # deterministically (lowest shard index), mirroring the
            # morsel executor's contract.
            errors: list[tuple[int, BaseException]] = []
            for pos, (shard, fut) in enumerate(futures):
                try:
                    outcomes[pos] = fut.result()
                except Exception as exc:
                    errors.append((shard.index, exc))
            if errors:
                self.metrics.inc("router_shard_failures", len(errors))
                errors.sort(key=lambda pair: pair[0])
                raise errors[0][1]
        parts = [(list(o.agg_ops), o.groups) for o in outcomes]
        if any(ops for ops, _ in parts):
            merged = TileStreamExecutor.merge_parts({}, parts)
        else:  # defensive: no aggregates recorded — single part passthrough
            merged = dict(outcomes[0].groups)
        merge_ms = 0.0
        if len(selected) > 1:
            # Ring all-gather of the per-shard partial aggregates: each
            # group entry is a (code, value) pair of 8-byte ints.
            partial_bytes = max(16 * max(1, len(o.groups)) for o in outcomes)
            merge_ms = self.sharded.merge_results(partial_bytes)
            self.metrics.observe("router_merge_ms", merge_ms)
        wall_ms = max(o.device_ms for o in outcomes) + merge_ms
        self._advance(wall_ms)
        for o in outcomes:
            self.metrics.observe(
                "shard_execute_ms", o.device_ms, labels={"shard": o.shard}
            )
            self.metrics.gauge(
                "shard_busy_ms",
                self.shards[o.shard].busy_ms,
                labels={"shard": o.shard},
            )
        self.last_execution = {
            "query": query.name,
            "shards": [o.shard for o in outcomes],
            "shard_ms": {o.shard: o.device_ms for o in outcomes},
            "shard_morsels": {o.shard: o.morsels for o in outcomes},
            "merge_ms": merge_ms,
            "wall_ms": wall_ms,
        }
        return merged, wall_ms

    # -- point lookups -------------------------------------------------------

    def lookup(self, name: str, indices: np.ndarray) -> tuple[np.ndarray, float]:
        """Scatter-gather one coalesced lookup batch across the shards.

        Indices are split by shard row range; each owning shard gathers
        its slice on its own device concurrently, and the fetched values
        ride the interconnect back (one all-gather).  Replicated columns
        skip the scatter entirely: the least-loaded shard serves the
        whole batch from its pinned full copy.
        """
        indices = np.asarray(indices, dtype=np.int64)
        col = self.store[name]
        out = np.empty(indices.size, dtype=np.int64)
        if name in self.replicated:
            shard = min(self._nonempty(), key=lambda s: s.busy_ms)
            ms = self._gather_on(shard, col, indices, out, slice(None))
            self._advance(ms)
            return out, ms
        plan: list[tuple[ColumnShard, np.ndarray]] = []
        for shard in self._nonempty():
            mask = (indices >= shard.row_lo) & (indices < shard.row_hi)
            if shard.row_hi >= self.num_rows:
                mask |= indices >= self.num_rows  # ragged tail / OOB guard
            if mask.any():
                plan.append((shard, np.flatnonzero(mask)))
        if not plan:
            return out, 0.0
        if len(plan) == 1:
            shard, pos = plan[0]
            wall_ms = self._gather_on(shard, col, indices[pos], out, pos)
        else:
            pool = self._ensure_dispatch()
            futures = [
                (
                    shard,
                    pool.submit(self._gather_on, shard, col, indices[pos], out, pos),
                )
                for shard, pos in plan
            ]
            errors: list[tuple[int, BaseException]] = []
            wall_ms = 0.0
            for shard, fut in futures:
                try:
                    wall_ms = max(wall_ms, fut.result())
                except Exception as exc:
                    errors.append((shard.index, exc))
            if errors:
                errors.sort(key=lambda pair: pair[0])
                raise errors[0][1]
            # Fetched values all-gather back over the interconnect.
            per_device = max(pos.size for _, pos in plan) * 8
            wall_ms += self.sharded.merge_results(per_device)
        self._advance(wall_ms)
        return out, wall_ms

    def _gather_on(self, shard, col, idx, out, pos) -> float:
        """Gather ``idx`` of one column on a shard's device into ``out[pos]``."""
        with shard.lock:
            before = shard.device.elapsed_ms
            # Branch on the ``col`` snapshot the router fetched once: a
            # tier swap racing this gather must not pair a re-probed
            # verdict with the snapshot's payload.
            pinned = shard.engine.pinned_decoded(col.name)
            if pinned is not None:
                with shard.device.launch(
                    f"lookup-{col.name}", grid_blocks=max(1, idx.size // 128)
                ) as k:
                    k.read_gather(idx.size, 4, pinned.size * 4)
                    k.compute(idx.size)
                fetched = np.asarray(pinned)[idx]
            elif shard.engine.inline_column(col):
                fetched = gather(col.payload, idx, shard.device).values
            else:
                if col.tier == "cold":
                    shard.engine.decompress_first((col.name,))
                with shard.device.launch(
                    f"lookup-{col.name}", grid_blocks=max(1, idx.size // 128)
                ) as k:
                    k.read_gather(idx.size, 4, col.values.size * 4)
                    k.compute(idx.size)
                fetched = np.asarray(col.values)[idx]
            out[pos] = fetched
            ms = shard.device.elapsed_ms - before
            shard.busy_ms += ms
            return ms

    # -- invalidation fan-out ------------------------------------------------

    def invalidate_column(self, name: str) -> None:
        """Drop every shard's cached derivatives of one column."""
        for shard in self.shards:
            shard.engine.invalidate_column(name)

    def bind_updatable(self, name: str, column: "UpdatableColumn") -> None:
        """Serve ``name`` from an updatable column on every shard.

        Each shard's engine installs its own flush hook, so one
        :meth:`~repro.core.updates.UpdatableColumn.flush` swaps the
        shared store image once and invalidates every shard's caches,
        pool residents and semantic-cache epochs — no shard can serve
        pre-update bytes.
        """
        for shard in self.shards:
            shard.engine.bind_updatable(name, column)

    # -- maintenance ---------------------------------------------------------

    def trim_arenas(self, max_bytes: int = 0) -> int:
        """Trim every shard's streaming decode arenas; returns bytes freed."""
        live = self._nonempty()
        if not live:
            return 0
        share = max(0, max_bytes) // len(live)
        return sum(s.engine.trim_stream_arenas(share) for s in live)

    def shard_summary(self) -> list[dict]:
        """One report row per shard (routing, occupancy, residency)."""
        return [
            {
                "shard": s.index,
                "tiles": s.num_tiles,
                "rows": s.num_rows,
                "routed": s.routed,
                "busy_ms": s.busy_ms,
                "resident_bytes": s.pool.resident_bytes,
                "evictions": self.metrics.counter(
                    "pool_evictions", labels={"shard": s.index}
                ),
            }
            for s in self.shards
        ]

    def close(self) -> None:
        """Shut down shard executors and the dispatch pool (idempotent)."""
        for shard in self.shards:
            shard.executor.close()
        if self._dispatch is not None:
            self._dispatch.shutdown(wait=True)
            self._dispatch = None
