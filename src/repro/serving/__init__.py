"""The compressed-column serving layer (the system around §3/§7's model).

Three cooperating pieces turn the single-query reproduction into a
multi-tenant server:

* :class:`~repro.serving.pool.ColumnPool` — a byte-budgeted GPU buffer
  manager: compressed and decoded column images are first-class residents
  with pin counts, and a cost-aware policy (reconstructible images first,
  greedy-dual decode-cost × recency within a class) evicts under
  pressure, so ``GPUSpec.global_capacity_bytes`` is actually enforced.
* :class:`~repro.serving.scheduler.QueryServer` — concurrent admission of
  SSB queries and point lookups over one shared engine, with a bounded
  queue (backpressure), per-request simulated timeouts, and batching of
  compatible requests into one execution.
* :class:`~repro.serving.metrics.MetricsRegistry` — the shared counters,
  gauges and latency percentiles both components export.
* :class:`~repro.serving.semcache.SemanticResultCache` — a byte-budgeted
  semantic result cache of per-tile-span partial aggregates, reused
  across queries whose canonicalized predicates provably agree per tile.
* :class:`~repro.serving.sharding.ShardRouter` — multi-GPU serving:
  columns partitioned tile-range-wise over N simulated devices, queries
  routed only to shards surviving zone-map pushdown, per-shard partials
  scatter-gathered over the modeled interconnect (bit-identical answers
  at every shard count).
* :class:`~repro.serving.tiering.CodecTieringManager` — workload-adaptive
  codec tiering: per-column decayed access heat drives background
  re-encoding between hot (decode-cheapest, optionally pinned decoded),
  warm (planner's static choice) and cold (nvCOMP entropy, spillable to
  disk) tiers, published by atomic epoch-checked column swaps.
"""

from repro.serving.faults import (
    FAULT_MODES,
    FaultInjector,
    TransientDecodeError,
    copy_encoded,
)
from repro.serving.metrics import (
    MetricsRegistry,
    labeled,
    metrics_rows,
    percentile,
)
from repro.serving.pool import (
    ColumnPool,
    EvictionRecord,
    PoolAdmissionError,
    Resident,
    estimate_decode_cost_ms,
)
from repro.serving.scheduler import (
    QueryServer,
    ServeRequest,
    ServedResult,
    ServerClosed,
    ServerSaturated,
)
from repro.serving.semcache import (
    DEFAULT_SEMCACHE_BUDGET,
    CachedPartial,
    SemanticResultCache,
)
from repro.serving.sharding import (
    ColumnShard,
    ShardRouter,
    codec_tile_alignment,
)
from repro.serving.tiering import (
    CodecTieringManager,
    TieringPolicy,
)

__all__ = [
    "CachedPartial",
    "CodecTieringManager",
    "ColumnPool",
    "ColumnShard",
    "DEFAULT_SEMCACHE_BUDGET",
    "EvictionRecord",
    "FAULT_MODES",
    "FaultInjector",
    "MetricsRegistry",
    "PoolAdmissionError",
    "QueryServer",
    "Resident",
    "SemanticResultCache",
    "ServeRequest",
    "ServedResult",
    "ServerClosed",
    "ServerSaturated",
    "ShardRouter",
    "TieringPolicy",
    "TransientDecodeError",
    "codec_tile_alignment",
    "copy_encoded",
    "estimate_decode_cost_ms",
    "labeled",
    "metrics_rows",
    "percentile",
]
