"""Deterministic fault injection for the codec and serving stack.

The robustness layer needs faults on demand: the fuzz suite drives every
registry codec through a corruption matrix, and the serving tests push a
:class:`QueryServer` through transient failures, persistent corruption,
and concurrent corruption storms.  Everything here is seeded and
reproducible — the same seed produces the same flipped bit.

``FaultInjector`` mutates *encoded* columns (payload bit flips, metadata
bit flips, truncation, logical-length mutation) and always clears the
runtime verification marks afterwards so lazy checksum state never masks
the injected fault.  :class:`TransientDecodeError` plus
:meth:`FaultInjector.transient_faults` model recoverable failures (a
dropped DMA transfer, an evicted page) that succeed on retry.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.formats.base import EncodedColumn

#: The corruption matrix's four modes.
FAULT_MODES = ("payload-bit", "meta-bit", "truncate", "length")

#: Runtime-only meta keys that must not survive a mutation (or a copy).
_RUNTIME_MARKS = ("_crc_seen", "_validated")


class TransientDecodeError(RuntimeError):
    """A decode failure that is expected to succeed when retried."""


def copy_encoded(enc: EncodedColumn) -> EncodedColumn:
    """Deep-copy an encoded column (fresh arrays, fresh meta, no marks)."""
    meta = {
        k: (v.copy() if isinstance(v, np.ndarray) else copy.deepcopy(v))
        for k, v in enc.meta.items()
        if k not in _RUNTIME_MARKS
    }
    return EncodedColumn(
        codec=enc.codec,
        count=enc.count,
        arrays={name: arr.copy() for name, arr in enc.arrays.items()},
        meta=meta,
        dtype=enc.dtype,
    )


class FaultInjector:
    """Seeded source of reproducible corruption and transient failures.

    Args:
        seed: seeds the injector's private generator; two injectors with
            the same seed apply identical faults in identical order.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        #: One record per applied fault: {"mode", "target", "detail"}.
        self.log: list[dict] = []

    # -- encoded-column corruption ------------------------------------------

    def corrupt(self, enc: EncodedColumn, mode: str) -> dict:
        """Apply one fault of ``mode`` to ``enc`` in place.

        Modes: ``payload-bit`` flips a bit in the largest physical array
        (the packed data), ``meta-bit`` flips a bit in a metadata array
        (block starts, headers, run counts), ``truncate`` drops a tail
        slice of the payload, ``length`` mutates the declared logical
        count.  Runtime verification marks are cleared so the fault is
        visible to the next decode.  Returns a description of what was
        mutated (also appended to :attr:`log`).
        """
        if mode == "payload-bit":
            info = self._flip_bit(enc, self._payload_name(enc))
        elif mode == "meta-bit":
            info = self._flip_bit(enc, self._metadata_name(enc))
        elif mode == "truncate":
            info = self._truncate(enc)
        elif mode == "length":
            info = self._mutate_length(enc)
        else:
            raise ValueError(f"unknown fault mode {mode!r}; known: {FAULT_MODES}")
        self._reset_marks(enc)
        info["mode"] = mode
        self.log.append(info)
        return info

    def corrupt_copy(self, enc: EncodedColumn, mode: str) -> EncodedColumn:
        """Like :meth:`corrupt`, but on a deep copy; the original is untouched."""
        clone = copy_encoded(enc)
        self.corrupt(clone, mode)
        return clone

    def flip_decoded_bit(self, values: np.ndarray) -> dict:
        """Flip one bit of an already-decoded image in place.

        Models silent in-memory corruption of a cached decoded column
        (the case ``verify_cached`` re-decode recovery exists for).
        """
        flat = values.view(np.uint8).reshape(-1)
        if flat.size == 0:
            raise ValueError("cannot corrupt an empty decoded image")
        byte = int(self._rng.integers(flat.size))
        bit = int(self._rng.integers(8))
        flat[byte] ^= np.uint8(1 << bit)
        info = {"mode": "decoded-bit", "target": "<decoded>", "detail": f"byte {byte} bit {bit}"}
        self.log.append(info)
        return info

    # -- transient failures -------------------------------------------------

    def transient_faults(self, columns=None, times: int = 1):
        """A decode hook raising :class:`TransientDecodeError` ``times`` times.

        Returns a callable suitable for ``CrystalEngine.fault_hook``: it
        is invoked with a column name before each source decode and
        raises for the first ``times`` decodes of each matching column
        (every column when ``columns`` is None), then succeeds — the
        retry-with-backoff path's test fixture.
        """
        remaining: dict[str, int] = {}
        watched = None if columns is None else set(columns)

        def hook(column: str) -> None:
            if watched is not None and column not in watched:
                return
            left = remaining.setdefault(column, times)
            if left > 0:
                remaining[column] = left - 1
                raise TransientDecodeError(
                    f"simulated transient decode failure for column {column!r} "
                    f"({left} remaining)"
                )

        return hook

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _reset_marks(enc: EncodedColumn) -> None:
        for key in _RUNTIME_MARKS:
            enc.meta.pop(key, None)

    @staticmethod
    def _payload_name(enc: EncodedColumn) -> str:
        """The payload array: the largest physical buffer."""
        return max(enc.arrays, key=lambda k: enc.arrays[k].nbytes)

    def _metadata_name(self, enc: EncodedColumn) -> str:
        """A metadata array: any non-empty array other than the payload.

        Single-array codecs (delta, simple8b) have no separate metadata
        stream, so the fault lands in the payload's leading header-like
        bytes instead — still a distinct failure surface from the random
        payload flip.
        """
        payload = self._payload_name(enc)
        candidates = sorted(
            k for k, a in enc.arrays.items() if k != payload and a.nbytes > 0
        )
        if not candidates:
            return payload
        return candidates[int(self._rng.integers(len(candidates)))]

    def _flip_bit(self, enc: EncodedColumn, array_name: str) -> dict:
        arr = enc.arrays[array_name]
        flat = arr.view(np.uint8).reshape(-1)
        if flat.size == 0:
            # Nothing to flip (empty column): fall back to a length fault.
            return self._mutate_length(enc)
        byte = int(self._rng.integers(flat.size))
        bit = int(self._rng.integers(8))
        flat[byte] ^= np.uint8(1 << bit)
        return {"target": array_name, "detail": f"byte {byte} bit {bit}"}

    def _truncate(self, enc: EncodedColumn) -> dict:
        name = self._payload_name(enc)
        arr = enc.arrays[name]
        if arr.size == 0:
            return self._mutate_length(enc)
        drop = int(self._rng.integers(1, max(2, arr.size // 4 + 1)))
        enc.arrays[name] = arr[: arr.size - drop].copy()
        return {"target": name, "detail": f"dropped {drop} trailing elements"}

    def _mutate_length(self, enc: EncodedColumn) -> dict:
        old = enc.count
        # Flip a low bit of the declared count (never producing a negative
        # or astronomically large count — a *plausible* wrong length is the
        # dangerous one).
        new = old ^ (1 << int(self._rng.integers(4)))
        if new < 0:
            new = old + 1
        enc.count = int(new)
        return {"target": "count", "detail": f"{old} -> {enc.count}"}
