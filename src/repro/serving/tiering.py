"""Workload-adaptive codec tiering with background recompression.

The planner picks each column's codec once, from data statistics alone
(:func:`~repro.core.hybrid.choose_gpu_star` keeps the smallest of
GPU-FOR / GPU-DFOR / GPU-RFOR).  That is the right static answer, but a
serving workload is not static: a handful of columns absorb most of the
decode work while others sit untouched for whole bursts.  The ratio-
optimal codec is then the wrong operating point at both extremes —

* **hot** columns should be stored under the *decode-cheapest* codec
  (and optionally kept decoded and pinned in the
  :class:`~repro.serving.pool.ColumnPool`), trading compressed bytes for
  kernel time on every touch;
* **cold** columns should drop to an entropy tier — the nvCOMP cascade,
  whose per-chunk metadata costs a little ratio and whose layer-per-
  kernel decode costs a lot of speed — and can be spilled to an on-disk
  :mod:`~repro.formats.container` entirely, reclaiming their device
  residency;
* everything in between stays **warm**: the planner's static choice.

:class:`CodecTieringManager` is the background maintenance task closing
that loop.  The :class:`~repro.serving.scheduler.QueryServer` feeds it
per-column access heat (exponentially-decayed counters in the shared
:class:`~repro.serving.metrics.MetricsRegistry`, timestamped on the
serving clock); on each maintenance pass the manager ranks columns by
heat, re-encodes movers *off the query path*, verifies each re-encode
decodes bit-identically, and publishes through
:meth:`~repro.ssb.loader.ColumnStore.swap_column` — a whole-object
compare-and-swap keyed on the column's epoch, so a racing flush always
wins and a racing query always sees one self-consistent column image.
After the swap, the invalidation callback fans out to every engine
(decoded/metadata pool residents, semantic-cache epochs, all shards), so
no cached derivative of the old encoding survives the epoch.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.core.hybrid import choose_gpu_star
from repro.core.nvcomp import NvCompColumn, decode_nvcomp, encode_nvcomp
from repro.core.planner import decode_cost_estimate
from repro.formats.container import save_container
from repro.formats.registry import get_codec
from repro.gpusim.executor import GPUDevice
from repro.serving.metrics import MetricsRegistry, labeled
from repro.serving.pool import PoolAdmissionError
from repro.ssb.loader import ColumnStore, StoredColumn

#: The tiers a column can occupy, hottest first.
TIERS = ("hot", "warm", "cold")

#: Tile codecs the hot tier chooses between, by *measured* decode cost on
#: a probe device (not by ratio — that is the warm tier's criterion).
HOT_CODECS = ("gpu-for", "gpu-dfor", "gpu-rfor", "gpu-bp", "gpu-simdbp128")

#: Decayed-counter name carrying per-column access heat (labelled
#: ``column_accesses{column=...}`` in the registry).
HEAT_METRIC = "column_accesses"


@dataclass
class TieringPolicy:
    """Knobs of the adaptive tiering loop (all times in simulated ms)."""

    #: Half-life of the per-column access counters: a column untouched
    #: for one half-life loses half its heat.
    half_life_ms: float = 2_000.0
    #: At most this many columns may occupy the hot tier at once.
    hot_count: int = 2
    #: Decayed accesses a column needs to be promoted to hot.
    hot_min_accesses: float = 4.0
    #: Decayed accesses at or below which a column demotes to cold.
    cold_max_accesses: float = 0.5
    #: Keep hot columns' decoded images pinned in each engine's pool, so
    #: scans read 4-byte rows and lookups are plain coalesced gathers.
    pin_hot_decoded: bool = True
    #: Directory cold columns spill their container into (``None``: the
    #: entropy-coded payload stays in host memory, device residency is
    #: still reclaimed on the next pool invalidation).
    spill_dir: str | None = None
    #: The store's compressed footprint may grow to at most this factor
    #: of its size when the manager was attached (the static planner
    #: baseline); promotions that would exceed it are skipped.
    bytes_budget_factor: float = 1.10
    #: A column must sit in its tier at least this long before moving
    #: again — hysteresis against thrash at a tier boundary.
    min_dwell_ms: float = 0.0
    #: Minimum serving-clock gap between maintenance passes triggered
    #: from the scheduler (:meth:`CodecTieringManager.maybe_run`).
    maintenance_interval_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.half_life_ms <= 0:
            raise ValueError("half_life_ms must be positive")
        if self.hot_count < 0:
            raise ValueError("hot_count must be non-negative")
        if self.bytes_budget_factor < 1.0:
            raise ValueError("bytes_budget_factor must be >= 1.0")


class CodecTieringManager:
    """Scores column heat and re-encodes columns between codec tiers.

    The manager never blocks the query path: re-encoding and bit-exact
    verification happen on the maintenance caller's thread against a
    snapshot of the column, and publication is a single epoch-checked
    object swap.  A query that raced the swap either holds the old
    self-consistent image (still correct — values are bit-identical by
    the verify-before-publish contract) or fetches the new one.
    """

    def __init__(
        self,
        store: ColumnStore,
        engines: Sequence[Any],
        device: GPUDevice,
        metrics: MetricsRegistry | None = None,
        policy: TieringPolicy | None = None,
        invalidate: Callable[[str], Any] | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.store = store
        #: Engines whose pools receive pinned hot images (one per shard
        #: in router mode, the single engine otherwise).
        self.engines = tuple(engines)
        self.device = device
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.policy = policy if policy is not None else TieringPolicy()
        self._invalidate = invalidate
        self._clock = clock if clock is not None else (lambda: 0.0)
        #: The static footprint the bytes budget is measured against.
        self.baseline_bytes = store.total_bytes
        self._last_moved: dict[str, float] = {}
        self._last_run = float("-inf")
        self._maint_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    # -- heat ----------------------------------------------------------------

    def record_access(
        self, columns: Iterable[str], amount: float = 1.0, at: float | None = None
    ) -> None:
        """Count one group's touches of ``columns`` at serving time ``at``."""
        if at is None:
            at = self._clock()
        for name in columns:
            self.metrics.touch(
                HEAT_METRIC,
                amount,
                at=at,
                half_life=self.policy.half_life_ms,
                labels={"column": name},
            )

    def heat(self, name: str, now: float | None = None) -> float:
        """A column's decayed access count, projected to ``now``."""
        if now is None:
            now = self._clock()
        return self.metrics.decayed_value(
            HEAT_METRIC,
            now=now,
            half_life=self.policy.half_life_ms,
            labels={"column": name},
        )

    def tiers(self) -> dict[str, str]:
        """Every column's current tier (one snapshot per column)."""
        return {name: self.store[name].tier for name in self.store.columns}

    # -- the maintenance pass ------------------------------------------------

    def maybe_run(self, now: float | None = None) -> int:
        """Run a pass if the maintenance interval elapsed; swaps made."""
        if now is None:
            now = self._clock()
        if now - self._last_run < self.policy.maintenance_interval_ms:
            return 0
        return self.run_once(now)

    def run_once(self, now: float | None = None) -> int:
        """One maintenance pass: demote cooled columns, promote hot ones.

        Returns the number of columns whose tier actually changed.
        Demotions run before promotions so reclaimed bytes fund the
        promotions' (usually worse-ratio) hot encodings under the
        bytes budget.
        """
        with self._maint_lock:
            if now is None:
                now = self._clock()
            self._last_run = now
            self.metrics.inc("tiering_runs")
            policy = self.policy
            heats = {
                name: self.heat(name, now) for name in list(self.store.columns)
            }
            ranked = sorted(heats, key=heats.__getitem__, reverse=True)
            hot_set = {
                name
                for name in ranked[: policy.hot_count]
                if heats[name] >= policy.hot_min_accesses
            }
            targets = {
                name: (
                    "hot"
                    if name in hot_set
                    else "cold"
                    if heats[name] <= policy.cold_max_accesses
                    else "warm"
                )
                for name in ranked
            }
            swaps = 0
            # Demotions first (coldest first), promotions after.
            for name in reversed(ranked):
                if TIERS.index(targets[name]) > TIERS.index(self.store[name].tier):
                    swaps += self._move(name, targets[name], now)
            for name in ranked:
                if TIERS.index(targets[name]) < TIERS.index(self.store[name].tier):
                    swaps += self._move(name, targets[name], now)
            self.metrics.gauge(
                "tiering_hot_columns",
                sum(1 for t in self.tiers().values() if t == "hot"),
            )
            self.metrics.gauge(
                "tiering_cold_columns",
                sum(1 for t in self.tiers().values() if t == "cold"),
            )
            return swaps

    def _move(self, name: str, target: str, now: float) -> int:
        """Re-encode one column for ``target`` and publish atomically."""
        col = self.store[name]  # the snapshot everything below works from
        if col.tier == target:
            return 0
        moved_at = self._last_moved.get(name)
        if moved_at is not None and now - moved_at < self.policy.min_dwell_ms:
            return 0
        expected_epoch = col.epoch
        wall0 = time.perf_counter()
        try:
            new = self._build(col, target)
        except _BudgetExceeded:
            self.metrics.inc("tiering_budget_skips")
            return 0
        except Exception:
            self.metrics.inc("tiering_reencode_failures")
            return 0
        reencode_ms = (time.perf_counter() - wall0) * 1e3
        old = self.store.swap_column(name, new, expected_epoch=expected_epoch)
        if old is None:
            # A flush (or another maintainer) won the race; its image is
            # newer than our snapshot, so dropping this re-encode is the
            # correct outcome.
            self.metrics.inc("tiering_swap_races")
            return 0
        self._last_moved[name] = now
        self.metrics.inc("tiering_swaps")
        self.metrics.observe("tiering_reencode_ms", reencode_ms)
        self.metrics.set_info(labeled("tier", {"column": name}), target)
        # Fan the epoch out before any new placement: every engine drops
        # decoded/metadata/compressed residents and bumps its semantic-
        # cache epoch, so nothing derived from ``old`` survives.
        if self._invalidate is not None:
            self._invalidate(name)
        if target == "cold":
            reclaimed = old.nbytes if new.spill_path is not None else max(
                0, old.nbytes - new.nbytes
            )
            if reclaimed:
                self.metrics.inc("tiering_bytes_reclaimed", reclaimed)
        if target == "hot" and self.policy.pin_hot_decoded:
            self._pin_decoded(new)
        return 1

    # -- tier builders (all verify bit-identity before returning) ------------

    def _build(self, col: StoredColumn, target: str) -> StoredColumn:
        if target == "hot":
            return self._build_hot(col)
        if target == "cold":
            return self._build_cold(col)
        return self._build_warm(col)

    def _build_hot(self, col: StoredColumn) -> StoredColumn:
        """Decode-cheapest encoding of the column that fits the budget."""
        values = np.asarray(col.values)
        candidates = []
        for codec_name in HOT_CODECS:
            try:
                enc = get_codec(codec_name).encode(values)
            except Exception:
                continue  # codec cannot represent this column's shape
            probe = GPUDevice(spec=self.device.spec)
            cost = decode_cost_estimate(enc, probe)
            candidates.append((cost, enc.nbytes, codec_name, enc))
        if not candidates:
            raise ValueError(f"no hot-tier codec can encode {col.name!r}")
        candidates.sort(key=lambda c: (c[0], c[1]))
        budget = self.baseline_bytes * self.policy.bytes_budget_factor
        for _cost, nbytes, codec_name, enc in candidates:
            if self.store.total_bytes - col.nbytes + nbytes <= budget:
                break
        else:
            raise _BudgetExceeded(col.name)
        self._verify(col, get_codec(codec_name).decode(enc))
        enc.meta.setdefault("column", col.name)
        return StoredColumn(
            name=col.name,
            system=col.system,
            values=col.values,
            payload=enc,
            nbytes=enc.nbytes,
            codec_name=codec_name,
            tier="hot",
        )

    def _build_warm(self, col: StoredColumn) -> StoredColumn:
        """The planner's static best-ratio choice (the seed encoding)."""
        choice = choose_gpu_star(np.asarray(col.values))
        self._verify(col, get_codec(choice.codec_name).decode(choice.encoded))
        choice.encoded.meta.setdefault("column", col.name)
        return StoredColumn(
            name=col.name,
            system=col.system,
            values=col.values,
            payload=choice.encoded,
            nbytes=choice.encoded.nbytes,
            codec_name=choice.codec_name,
            tier="warm",
        )

    def _build_cold(self, col: StoredColumn) -> StoredColumn:
        """nvCOMP entropy tier, optionally spilled to an on-disk container."""
        nv = encode_nvcomp(np.asarray(col.values))
        self._verify(col, decode_nvcomp(nv))
        payload: Any = nv
        spill_path = None
        if self.policy.spill_dir is not None:
            inner = nv.inner
            inner.meta["column"] = col.name
            inner.meta["nvcomp_scheme"] = nv.scheme
            inner.meta["nvcomp_chunk_meta"] = int(nv.chunk_metadata_bytes)
            os.makedirs(self.policy.spill_dir, exist_ok=True)
            spill_path = os.path.join(
                self.policy.spill_dir, f"{col.name}.rtlc"
            )
            save_container(inner, spill_path)
            payload = None
        return StoredColumn(
            name=col.name,
            system=col.system,
            values=col.values,
            payload=payload,
            nbytes=nv.nbytes,
            codec_name="",
            tier="cold",
            spill_path=spill_path,
        )

    @staticmethod
    def _verify(col: StoredColumn, decoded: np.ndarray) -> None:
        """The verify-before-publish contract: the re-encode must decode
        bit-identically to the snapshot it replaces."""
        if not np.array_equal(
            np.asarray(decoded, dtype=np.int64),
            np.asarray(col.values, dtype=np.int64),
        ):
            raise ValueError(
                f"re-encode of {col.name!r} is not bit-identical; not publishing"
            )

    def _pin_decoded(self, col: StoredColumn) -> None:
        """Pin the hot column's decoded image in every engine's pool.

        A pool too small (or too pinned) to take the image just leaves
        the column unpinned-hot — still served from its decode-cheapest
        codec, never an error.
        """
        values = np.asarray(col.values)
        nbytes = values.size * 4
        for engine in self.engines:
            pool = getattr(engine, "pool", None)
            if pool is None:
                continue
            probe = GPUDevice(spec=engine.device.spec)
            try:
                pool.admit(
                    f"decoded/{col.name}",
                    nbytes,
                    kind="decoded",
                    payload=values,
                    reconstruct_cost_ms=decode_cost_estimate(col.payload, probe),
                    pin=True,
                )
            except PoolAdmissionError:
                self.metrics.inc("tiering_pin_rejections")

    # -- background thread ---------------------------------------------------

    def start(self, interval_s: float = 0.05) -> None:
        """Run maintenance passes on a daemon thread every ``interval_s``."""
        if self._thread is not None:
            return
        self._stop_event.clear()

        def loop() -> None:
            while not self._stop_event.wait(interval_s):
                self.run_once()

        self._thread = threading.Thread(
            target=loop, name="codec-tiering", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join()
        self._thread = None


class _BudgetExceeded(RuntimeError):
    """Every candidate hot encoding would blow the bytes budget."""
