"""Quickstart: compress a column, decompress it in one simulated kernel.

Covers the library's three-step workflow:

1. encode an integer column with one of the paper's schemes (or let
   GPU-* pick the best one);
2. decompress it on the simulated GPU with the tile-based single-pass
   model and read the simulated time off the report;
3. compare against the cascading layer-at-a-time baseline — the paper's
   central result in five lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GPUDevice,
    choose_gpu_star,
    decompress,
    decompress_cascaded,
    get_codec,
    read_uncompressed,
)


def main() -> None:
    rng = np.random.default_rng(0)
    n = 2_000_000
    column = rng.integers(0, 2**16, n)

    # -- 1. encode ---------------------------------------------------------
    codec = get_codec("gpu-for")
    enc = codec.encode(column)
    print(f"GPU-FOR: {n:,} x 32-bit ints -> {enc.nbytes / 1e6:.1f} MB "
          f"({enc.bits_per_int:.2f} bits/int, {32 / enc.bits_per_int:.2f}x smaller)")

    # -- 2. tile-based decompression (one kernel pass) ----------------------
    device = GPUDevice()
    report = decompress(enc, device, write_back=True)
    assert np.array_equal(report.values, column), "decode must be bit-exact"
    print(f"tile-based decompression: {report.simulated_ms:.3f} simulated ms "
          f"in {report.kernel_count} kernel")

    # -- 3. the cascading baseline reads/writes global memory per layer -----
    cascade = decompress_cascaded(enc, GPUDevice())
    print(f"cascading decompression:  {cascade.simulated_ms:.3f} simulated ms "
          f"in {cascade.kernel_count} kernels "
          f"({cascade.simulated_ms / report.simulated_ms:.1f}x slower)")

    none_ms = read_uncompressed(n, GPUDevice())
    print(f"reading uncompressed:     {none_ms:.3f} simulated ms")

    # -- bonus: let GPU-* choose the scheme --------------------------------
    sorted_keys = np.arange(1, n + 1)
    choice = choose_gpu_star(sorted_keys)
    print(f"\nGPU-* picked {choice.codec_name} for sorted keys: "
          f"{choice.encoded.bits_per_int:.2f} bits/int "
          f"(candidates: { {k: round(v * 8 / n, 2) for k, v in choice.candidate_bytes.items()} })")


if __name__ == "__main__":
    main()
