"""Coprocessor pipeline: ship compressed data over PCIe (Figure 12).

Models the second GPU-database architecture the paper targets: the
working set lives in host memory and every query ships its columns over
a 12.8 GB/s PCIe link before executing.  Compression pays twice here —
less data over the slow link, then near-free inline decompression.

Run:  python examples/coprocessor_pipeline.py
"""

from repro import CrystalEngine, GPUDevice, QUERIES, V100, generate_ssb, load_lineorder
from repro.experiments.common import PAPER_SF, geomean

QUERY_PER_FLIGHT = ("q1.1", "q2.1", "q3.1", "q4.1")


def main(scale_factor: float = 0.02) -> None:
    db = generate_ssb(scale_factor=scale_factor)
    project = PAPER_SF / scale_factor
    stores = {s: load_lineorder(db, s) for s in ("none", "gpu-star")}

    print(f"{'query':8s} {'system':9s} {'transfer':>10s} {'execute':>10s} {'total':>10s}")
    speedups = []
    for qname in QUERY_PER_FLIGHT:
        query = QUERIES[qname]
        totals = {}
        for system, store in stores.items():
            shipped = sum(store[c].nbytes for c in query.columns)
            transfer_ms = V100.pcie.transfer_ms(int(shipped * project))
            engine = CrystalEngine(db, store, GPUDevice())
            execute_ms = engine.run(query).scaled_ms(project)
            totals[system] = transfer_ms + execute_ms
            print(f"{qname:8s} {system:9s} {transfer_ms:9.1f}ms {execute_ms:9.1f}ms "
                  f"{totals[system]:9.1f}ms")
        speedups.append(totals["none"] / totals["gpu-star"])
        print(f"{'':8s} -> GPU-* is {speedups[-1]:.2f}x faster\n")

    print(f"geomean speedup from compression: {geomean(speedups):.2f}x "
          f"(paper: 2.3x)")


if __name__ == "__main__":
    main()
