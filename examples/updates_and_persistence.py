"""Updates and persistence: the operational side of a compressed store.

The paper treats compression as a one-time host-side activity with a
recompress-and-reship path for updates (Section 8).  This example runs
that lifecycle end to end:

1. load a sorted-key column, compressed (GPU-* picks GPU-DFOR);
2. serve point reads through the buffered-update overlay;
3. apply a batch of updates, flush: recompress on the CPU (measured wall
   clock) and ship the new image over simulated PCIe;
4. persist the compressed column to disk and reload it bit-exactly.

Run:  python examples/updates_and_persistence.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import GPUDevice, get_codec
from repro.core import UpdatableColumn
from repro.formats import load_encoded, save_encoded


def main() -> None:
    rng = np.random.default_rng(1)
    n = 500_000
    column = UpdatableColumn(np.arange(1, n + 1))
    print(f"loaded {n:,} sorted keys -> {column.codec_name}, "
          f"{column.encoded.bits_per_int:.2f} bits/int")

    # Point updates are visible immediately through the overlay.
    column.update(1000, 7_777_777)
    print(f"after update: read(1000) = {column.read(1000)} "
          f"({column.pending_updates} update buffered, not yet compressed)")

    # A batch of random overwrites destroys sortedness in one region.
    idx = rng.integers(0, n // 10, 5_000)
    column.update_many(idx, rng.integers(0, 2**20, 5_000))

    device = GPUDevice()
    report = column.flush(device)
    print(f"flush: {report.updates_applied} updates folded in, re-encoded "
          f"with {report.codec_name} in {report.encode_seconds * 1e3:.0f} ms "
          f"(CPU), {report.compressed_bytes / 1e6:.2f} MB shipped over PCIe "
          f"in {report.transfer_ms:.3f} simulated ms")

    # Persist and reload the compressed image.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "keys.npz"
        save_encoded(column.encoded, path)
        loaded = load_encoded(path)
        restored = get_codec(loaded.codec).decode(loaded)
        assert np.array_equal(restored, column.snapshot())
        print(f"persisted to {path.name} ({path.stat().st_size / 1e6:.2f} MB "
              f"on disk) and reloaded bit-exactly")


if __name__ == "__main__":
    main()
