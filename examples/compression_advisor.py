"""Compression advisor: the Section 8 scheme-selection workflow.

Walks four realistic column shapes — a sorted primary key, a
dictionary-encoded text column (Zipfian), a timestamp-like run column,
and a random measure — and for each shows the column statistics, the
stats-only rule-of-thumb recommendation, the exact GPU-* choice, and
what every candidate scheme would have cost.

Run:  python examples/compression_advisor.py
"""

import numpy as np

from repro import ColumnStats, choose_gpu_star, heuristic_scheme
from repro.workloads import d3_zipf, runs, sorted_keys, uniform_bitwidth

N = 1_000_000

SCENARIOS = {
    "sorted primary key": sorted_keys(N),
    "dictionary-encoded text (Zipf a=1.5)": d3_zipf(1.5, N),
    "per-order timestamp (runs of ~8)": runs(8, N, distinct=40_000),
    "random measure (24-bit)": uniform_bitwidth(24, N),
}


def main() -> None:
    for name, column in SCENARIOS.items():
        stats = ColumnStats.from_values(column)
        choice = choose_gpu_star(column)
        guess = heuristic_scheme(stats)

        print(f"\n== {name} ==")
        print(f"  ndv={stats.distinct_count:,}  sorted={stats.is_sorted}  "
              f"avg_run={stats.avg_run_length:.1f}  "
              f"raw_bits={stats.raw_bits}  for_bits={stats.for_bits}")
        print(f"  rule of thumb (Section 8): {guess}")
        print(f"  exact GPU-* choice:        {choice.codec_name}"
              + ("  (heuristic agreed)" if guess == choice.codec_name else ""))
        for scheme, nbytes in sorted(choice.candidate_bytes.items(), key=lambda kv: kv[1]):
            marker = " <- chosen" if scheme == choice.codec_name else ""
            print(f"    {scheme:9s} {nbytes * 8 / N:6.2f} bits/int{marker}")


if __name__ == "__main__":
    main()
