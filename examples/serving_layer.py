"""Serve concurrent queries from a budgeted GPU buffer pool.

Demonstrates the serving layer end to end: a device budget smaller than
the decoded working set, eight client threads firing mixed SSB queries
and point lookups at a running QueryServer, and the metrics surface
showing what the pool and scheduler did — hits, evictions, batching,
backpressure, latency percentiles.

Run:  python examples/serving_layer.py
"""

import threading

import numpy as np

from repro import generate_ssb, load_lineorder
from repro.experiments.serving_workload import decoded_working_set_bytes
from repro.serving import QueryServer, ServerSaturated

QUERY_MIX = ("q1.1", "q2.1", "q3.1", "q4.1")
CLIENTS = 8
REQUESTS_PER_CLIENT = 6


def client(server: QueryServer, seed: int, failures: list) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(REQUESTS_PER_CLIENT):
        name = QUERY_MIX[int(rng.integers(len(QUERY_MIX)))]
        try:
            result = server.query(name, block_s=5.0).result(timeout=60)
        except ServerSaturated:
            failures.append(name)
            continue
        if not result.ok:
            failures.append(name)


def main(scale_factor: float = 0.01) -> None:
    db = generate_ssb(scale_factor=scale_factor)
    store = load_lineorder(db, "gpu-star")

    # Budget: the compressed store plus ~40% of the decoded working set,
    # so the pool must evict decoded images while serving.
    budget = store.total_bytes + int(0.4 * decoded_working_set_bytes(db))
    print(
        f"budget {budget / 1e6:.1f} MB  "
        f"(compressed {store.total_bytes / 1e6:.1f} MB, decoded working set "
        f"{decoded_working_set_bytes(db) / 1e6:.1f} MB)\n"
    )

    server = QueryServer(db, store, budget_bytes=budget,
                         max_queue=16, batch_window=4)
    server.start()
    failures: list = []
    threads = [
        threading.Thread(target=client, args=(server, seed, failures))
        for seed in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    server.stop()

    snap = server.metrics_snapshot()
    served = snap.get("server_served", 0)
    hits, misses = snap.get("pool_hits", 0), snap.get("pool_misses", 0)
    print(f"served {served}/{CLIENTS * REQUESTS_PER_CLIENT} requests "
          f"({len(failures)} failed), {snap.get('server_batches', 0)} batches, "
          f"{snap.get('server_batched_requests', 0)} piggybacked")
    print(f"simulated serving time {server.clock_ms:.3f} ms -> "
          f"{served / (server.clock_ms / 1000):.0f} queries/s")
    print(f"latency p50 {snap.get('latency_ms_p50', 0):.3f} ms, "
          f"p99 {snap.get('latency_ms_p99', 0):.3f} ms")
    print(f"pool: {hits / max(1, hits + misses):.0%} hit rate, "
          f"{snap.get('pool_evictions', 0)} evictions, peak resident "
          f"{snap.get('pool_peak_resident_bytes', 0) / 1e6:.1f} MB "
          f"of {budget / 1e6:.1f} MB budget")


if __name__ == "__main__":
    main()
