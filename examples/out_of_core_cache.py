"""Out-of-core analytics with a device-memory cache (Section 8 / 9.5).

Models a working set larger than device memory: compressed columns live
on the host and a byte-budgeted LRU keeps the hot ones on the GPU.  The
demo runs a rotating query mix twice and shows (1) the cold-vs-warm
transfer costs, (2) how compression effectively multiplies the cache —
the same byte budget holds ~3x more GPU-* columns than raw ones.

Run:  python examples/out_of_core_cache.py
"""

from repro import QUERIES, generate_ssb, load_lineorder
from repro.engine import CoprocessorExecutor

QUERY_MIX = ("q1.1", "q3.1", "q1.1", "q4.1", "q3.1", "q1.1")


def run_mix(store, db, budget: int) -> None:
    exe = CoprocessorExecutor(db, store, budget)
    print(f"  {'query':6s} {'transfer':>10s} {'execute':>10s} {'hits':>5s} {'misses':>7s}")
    for qname in QUERY_MIX:
        r = exe.run(QUERIES[qname])
        print(
            f"  {qname:6s} {r.transfer_ms:9.3f}ms {r.query.simulated_ms:9.3f}ms "
            f"{r.cache_hits:5d} {r.cache_misses:7d}"
        )
    stats = exe.cache.stats
    print(
        f"  cache: {stats.hit_rate:.0%} hit rate, "
        f"{stats.bytes_transferred / 1e6:.1f} MB transferred, "
        f"{stats.evictions} evictions"
    )


def main(scale_factor: float = 0.02) -> None:
    db = generate_ssb(scale_factor=scale_factor)
    stores = {s: load_lineorder(db, s) for s in ("none", "gpu-star")}

    # Budget: roughly half of the raw fact table -> raw thrashes, GPU-*
    # fits its whole working set.
    budget = stores["none"].total_bytes // 2
    print(f"device budget: {budget / 1e6:.1f} MB "
          f"(raw fact table: {stores['none'].total_bytes / 1e6:.1f} MB, "
          f"GPU-*: {stores['gpu-star'].total_bytes / 1e6:.1f} MB)\n")

    for system, store in stores.items():
        print(f"== {system} ==")
        run_mix(store, db, budget)
        print()


if __name__ == "__main__":
    main()
