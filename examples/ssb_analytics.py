"""SSB analytics: run the paper's end-to-end workload (Figures 9 and 11).

Generates a Star Schema Benchmark database, compresses the fact table
under each competing system, runs all 13 SSB queries through the
Crystal-style engine, verifies every system returns identical answers,
and prints the compression waterfall plus the query-time comparison.

Run:  python examples/ssb_analytics.py [scale_factor]
"""

import sys

from repro import CrystalEngine, GPUDevice, QUERIES, generate_ssb, load_lineorder
from repro.experiments.common import PAPER_SF, format_table, geomean

SYSTEMS = ("none", "gpu-star", "nvcomp", "planner", "gpu-bp", "omnisci")


def main(scale_factor: float = 0.02) -> None:
    print(f"generating SSB at SF={scale_factor} ...")
    db = generate_ssb(scale_factor=scale_factor)
    project = PAPER_SF / scale_factor
    print(f"lineorder: {db.num_lineorder_rows:,} rows "
          f"(projected to the paper's SF=20 for reporting)\n")

    stores = {system: load_lineorder(db, system) for system in SYSTEMS}

    print("compressed fact-table footprint:")
    raw = stores["none"].total_bytes
    for system, store in stores.items():
        print(f"  {system:9s} {store.total_bytes / 1e6:8.1f} MB "
              f"({raw / store.total_bytes:.2f}x vs raw)")

    print("\nrunning 13 SSB queries on each system ...")
    times: dict[str, dict[str, float]] = {}
    answers: dict[str, dict] = {}
    for system, store in stores.items():
        times[system] = {}
        for qname, query in QUERIES.items():
            engine = CrystalEngine(db, store, GPUDevice())
            result = engine.run(query)
            times[system][qname] = result.scaled_ms(project)
            answers.setdefault(qname, result.groups)
            assert result.groups == answers[qname], (
                f"{system} disagrees on {qname}"
            )
    print("all systems returned identical answers\n")

    rows = [
        {"query": q, **{s: times[s][q] for s in SYSTEMS}} for q in QUERIES
    ]
    rows.append({"query": "geomean", **{s: geomean(times[s].values()) for s in SYSTEMS}})
    print(format_table(rows))

    star = geomean(times["gpu-star"].values())
    print("\ngeomean slowdown vs GPU-* (paper: none 0.74, nvcomp 2.6, "
          "planner 4, gpu-bp 2.4, omnisci 12):")
    for system in SYSTEMS:
        print(f"  {system:9s} {geomean(times[system].values()) / star:6.2f}x")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
