"""EXPLAIN ANALYZE: see *why* inline decompression wins (Section 9.4).

Runs SSB q2.1 under three systems and prints each one's per-kernel
timeline.  The structural difference is immediately visible:

* ``none`` / ``gpu-star``: three lookup builds + ONE fused fact kernel
  (compressed loads just shrink its read column);
* ``nvcomp``: the same plan *prefixed* by a cascade of decompression
  kernels, every one reading and writing full columns through global
  memory — the round trips the tile-based model eliminates.

Run:  python examples/explain_queries.py
"""

from repro import CrystalEngine, GPUDevice, QUERIES, generate_ssb, load_lineorder
from repro.experiments.common import format_table

COLUMNS = ["kernel", "grid", "regs", "smem_KB", "occupancy",
           "read_MB", "write_MB", "Gops", "ms"]


def main(scale_factor: float = 0.02) -> None:
    db = generate_ssb(scale_factor=scale_factor)
    query = QUERIES["q2.1"]

    for system in ("none", "gpu-star", "nvcomp"):
        store = load_lineorder(db, system)
        engine = CrystalEngine(db, store, GPUDevice())
        timeline = engine.explain(query)
        total = sum(r["ms"] for r in timeline)
        print(f"\n== q2.1 on {system}: {len(timeline)} kernels, "
              f"{total:.3f} simulated ms ==")
        print(format_table(timeline, COLUMNS))

    print(
        "\nReading the plans: gpu-star's fact kernel reads fewer MB than "
        "none's (compressed columns) at slightly more Gops (inline decode); "
        "nvcomp pays whole extra kernels before its fact kernel even starts."
    )


if __name__ == "__main__":
    main()
